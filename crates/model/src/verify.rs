//! §7.3: the join-cardinality verification tool.
//!
//! Declared cardinalities (`LEFT OUTER MANY TO ONE JOIN`) are *not*
//! enforced by the engine — the paper's rationale is that uniqueness
//! constraints cost storage/CPU and restrict application design. To
//! mitigate the risk, SAP HANA "offers a tool that verifies whether the
//! specified join cardinality in a query aligns with the actual data";
//! this module is that tool.

use std::collections::HashMap;
use vdm_plan::DeclaredCardinality;
use vdm_storage::{Snapshot, StorageEngine};
use vdm_types::{Result, Value};

/// Outcome of verifying one declared cardinality against data.
#[derive(Debug, Clone, PartialEq)]
pub struct CardinalityReport {
    pub declared: DeclaredCardinality,
    /// Whether the declaration holds on the current data.
    pub holds: bool,
    /// Largest number of right-side matches observed for one key value.
    pub max_matches: usize,
    /// Left key values with no right match (breaks `MANY TO EXACT ONE`).
    pub unmatched_left_keys: usize,
    /// A witness key violating the declaration, if any.
    pub violating_key: Option<Vec<Value>>,
}

/// Verifies `declared` for a join `left.on_left = right.on_right` between
/// two stored tables at `snapshot`.
pub fn verify_join_cardinality(
    engine: &StorageEngine,
    snapshot: Snapshot,
    left_table: &str,
    on_left: &[&str],
    right_table: &str,
    on_right: &[&str],
    declared: DeclaredCardinality,
) -> Result<CardinalityReport> {
    let left = engine.scan(left_table, snapshot)?;
    let right = engine.scan(right_table, snapshot)?;
    let l_ords: Vec<usize> =
        on_left.iter().map(|c| left.schema.index_of_or_err(c)).collect::<Result<_>>()?;
    let r_ords: Vec<usize> =
        on_right.iter().map(|c| right.schema.index_of_or_err(c)).collect::<Result<_>>()?;

    // Count right rows per key value.
    let mut counts: HashMap<Vec<Value>, usize> = HashMap::new();
    for i in 0..right.num_rows() {
        let key: Vec<Value> = r_ords.iter().map(|&c| right.columns[c].get(i)).collect();
        if key.iter().any(|v| v.is_null()) {
            continue; // NULL keys never match.
        }
        *counts.entry(key).or_insert(0) += 1;
    }
    let mut max_matches = 0;
    let mut violating_key = None;
    for (k, &n) in &counts {
        if n > max_matches {
            max_matches = n;
            if n > 1 {
                violating_key = Some(k.clone());
            }
        }
    }
    // For MANY TO EXACT ONE, every (non-null) left key must have a match.
    let mut unmatched_left_keys = 0;
    let mut unmatched_witness = None;
    for i in 0..left.num_rows() {
        let key: Vec<Value> = l_ords.iter().map(|&c| left.columns[c].get(i)).collect();
        if key.iter().any(|v| v.is_null()) {
            continue;
        }
        if !counts.contains_key(&key) {
            unmatched_left_keys += 1;
            unmatched_witness.get_or_insert(key);
        }
    }
    let holds = match declared {
        DeclaredCardinality::ManyToOne => max_matches <= 1,
        DeclaredCardinality::ManyToExactOne => max_matches <= 1 && unmatched_left_keys == 0,
    };
    if violating_key.is_none() && declared == DeclaredCardinality::ManyToExactOne {
        violating_key = unmatched_witness.filter(|_| unmatched_left_keys > 0);
    }
    Ok(CardinalityReport { declared, holds, max_matches, unmatched_left_keys, violating_key })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use vdm_catalog::TableBuilder;
    use vdm_types::SqlType;

    fn setup(currency_rows: Vec<Vec<Value>>) -> StorageEngine {
        let e = StorageEngine::new();
        e.create_table(Arc::new(
            TableBuilder::new("orders")
                .column("id", SqlType::Int, false)
                .column("curr", SqlType::Text, true)
                .primary_key(&["id"])
                .build()
                .unwrap(),
        ))
        .unwrap();
        // Deliberately constraint-free, like real SAP dimension tables.
        e.create_table(Arc::new(
            TableBuilder::new("currency")
                .column("code", SqlType::Text, false)
                .column("rate", SqlType::Decimal { scale: 4 }, false)
                .build()
                .unwrap(),
        ))
        .unwrap();
        e.insert(
            "orders",
            vec![
                vec![Value::Int(1), Value::str("EUR")],
                vec![Value::Int(2), Value::str("USD")],
                vec![Value::Int(3), Value::Null],
            ],
        )
        .unwrap();
        e.insert("currency", currency_rows).unwrap();
        e
    }

    fn dec(s: &str) -> Value {
        Value::Dec(s.parse().unwrap())
    }

    #[test]
    fn many_to_one_holds_on_clean_data() {
        let e = setup(vec![
            vec![Value::str("EUR"), dec("1.0000")],
            vec![Value::str("USD"), dec("0.9200")],
        ]);
        let r = verify_join_cardinality(
            &e,
            e.snapshot(),
            "orders",
            &["curr"],
            "currency",
            &["code"],
            DeclaredCardinality::ManyToOne,
        )
        .unwrap();
        assert!(r.holds);
        assert_eq!(r.max_matches, 1);
    }

    #[test]
    fn duplicate_right_keys_violate_many_to_one() {
        let e = setup(vec![
            vec![Value::str("EUR"), dec("1.0000")],
            vec![Value::str("EUR"), dec("1.0500")],
        ]);
        let r = verify_join_cardinality(
            &e,
            e.snapshot(),
            "orders",
            &["curr"],
            "currency",
            &["code"],
            DeclaredCardinality::ManyToOne,
        )
        .unwrap();
        assert!(!r.holds);
        assert_eq!(r.max_matches, 2);
        assert_eq!(r.violating_key, Some(vec![Value::str("EUR")]));
    }

    #[test]
    fn exact_one_requires_full_coverage() {
        // USD missing: MANY TO ONE holds, MANY TO EXACT ONE does not.
        let e = setup(vec![vec![Value::str("EUR"), dec("1.0000")]]);
        let m2o = verify_join_cardinality(
            &e,
            e.snapshot(),
            "orders",
            &["curr"],
            "currency",
            &["code"],
            DeclaredCardinality::ManyToOne,
        )
        .unwrap();
        assert!(m2o.holds);
        let exact = verify_join_cardinality(
            &e,
            e.snapshot(),
            "orders",
            &["curr"],
            "currency",
            &["code"],
            DeclaredCardinality::ManyToExactOne,
        )
        .unwrap();
        assert!(!exact.holds);
        assert_eq!(exact.unmatched_left_keys, 1);
        assert_eq!(exact.violating_key, Some(vec![Value::str("USD")]));
    }

    #[test]
    fn null_keys_are_ignored() {
        // The NULL `curr` on order 3 counts neither as matched nor unmatched.
        let e =
            setup(vec![vec![Value::str("EUR"), dec("1.0")], vec![Value::str("USD"), dec("0.9")]]);
        let r = verify_join_cardinality(
            &e,
            e.snapshot(),
            "orders",
            &["curr"],
            "currency",
            &["code"],
            DeclaredCardinality::ManyToExactOne,
        )
        .unwrap();
        assert!(r.holds);
        assert_eq!(r.unmatched_left_keys, 0);
    }

    #[test]
    fn unknown_columns_error() {
        let e = setup(vec![]);
        assert!(verify_join_cardinality(
            &e,
            e.snapshot(),
            "orders",
            &["nope"],
            "currency",
            &["code"],
            DeclaredCardinality::ManyToOne,
        )
        .is_err());
    }
}
