//! Record-wise data access control (DAC).
//!
//! S/4HANA injects a per-user filter above consumption views at query time
//! (§3): "the DAC filter is automatically injected per user when querying,
//! further increasing the complexity of VDM queries". Crucially for the
//! optimizer, DAC predicates reference *dimension* columns (e.g. the
//! supplier's company code from `lfa1`), which is why the two DAC-guarded
//! joins survive in Fig. 4 while the other 28 augmentation joins vanish.

use std::collections::HashMap;
use vdm_expr::{BinOp, Expr};
use vdm_plan::{LogicalPlan, PlanRef};
use vdm_types::{Result, Value, VdmError};

/// One access rule: on `view`, the user may only see rows where `column`
/// is one of `allowed` (NULL dimension values — unmatched outer-join rows —
/// are visible when `allow_null` is set, matching SAP's "unassigned"
/// semantics).
#[derive(Debug, Clone)]
pub struct DacRule {
    pub view: String,
    pub column: String,
    pub allowed: Vec<Value>,
    pub allow_null: bool,
}

impl DacRule {
    /// Builds the filter predicate against the view's output schema.
    pub fn predicate(&self, schema: &vdm_types::Schema) -> Result<Expr> {
        let col = schema.index_of_or_err(&self.column)?;
        let mut parts: Vec<Expr> = self
            .allowed
            .iter()
            .map(|v| Expr::col(col).binary(BinOp::Eq, Expr::Lit(v.clone())))
            .collect();
        if self.allow_null {
            parts.push(Expr::IsNull(Box::new(Expr::col(col))));
        }
        if parts.is_empty() {
            // No allowed values: the user sees nothing.
            return Ok(Expr::boolean(false));
        }
        let mut it = parts.into_iter();
        let first = it.next().expect("non-empty");
        Ok(it.fold(first, |acc, p| acc.or(p)))
    }
}

/// Per-user access policy over the VDM.
#[derive(Debug, Default, Clone)]
pub struct AccessPolicy {
    rules: HashMap<String, Vec<DacRule>>,
}

impl AccessPolicy {
    /// Empty policy (no restrictions).
    pub fn new() -> AccessPolicy {
        AccessPolicy::default()
    }

    /// Grants `user` access to rows of `rule.view` matching the rule.
    pub fn add_rule(&mut self, user: &str, rule: DacRule) {
        self.rules.entry(user.to_ascii_lowercase()).or_default().push(rule);
    }

    /// Rules applying to `user` on `view`.
    pub fn rules_for(&self, user: &str, view: &str) -> Vec<&DacRule> {
        self.rules
            .get(&user.to_ascii_lowercase())
            .map(|rs| rs.iter().filter(|r| r.view.eq_ignore_ascii_case(view)).collect())
            .unwrap_or_default()
    }

    /// Wraps `plan` (the body of `view`) with the user's DAC filters — the
    /// automatic injection step. A user with no rules on the view gets an
    /// error rather than unrestricted access (deny by default), unless the
    /// policy is completely empty (DAC not configured).
    pub fn protect(&self, user: &str, view: &str, plan: PlanRef) -> Result<PlanRef> {
        if self.rules.is_empty() {
            return Ok(plan);
        }
        let rules = self.rules_for(user, view);
        if rules.is_empty() {
            return Err(VdmError::Bind(format!(
                "user {user:?} has no access rules for view {view:?}"
            )));
        }
        let schema = plan.schema();
        let mut out = plan;
        for rule in rules {
            let pred = rule.predicate(&schema)?;
            out = LogicalPlan::filter(out, pred)?;
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use vdm_catalog::TableBuilder;
    use vdm_types::SqlType;

    fn plan() -> PlanRef {
        LogicalPlan::scan(Arc::new(
            TableBuilder::new("v")
                .column("id", SqlType::Int, false)
                .column("company", SqlType::Text, true)
                .primary_key(&["id"])
                .build()
                .unwrap(),
        ))
    }

    fn rule(allowed: &[&str], allow_null: bool) -> DacRule {
        DacRule {
            view: "v".into(),
            column: "company".into(),
            allowed: allowed.iter().map(Value::str).collect(),
            allow_null,
        }
    }

    #[test]
    fn predicate_builds_or_chain() {
        let p = plan();
        let r = rule(&["1000", "2000"], false);
        let pred = r.predicate(&p.schema()).unwrap();
        let s = pred.to_string();
        assert!(s.contains("OR"), "{s}");
        assert!(!s.contains("IS NULL"));
        let r = rule(&["1000"], true);
        assert!(r.predicate(&p.schema()).unwrap().to_string().contains("IS NULL"));
    }

    #[test]
    fn empty_allowed_list_denies_all() {
        let p = plan();
        let r = rule(&[], false);
        assert_eq!(r.predicate(&p.schema()).unwrap(), Expr::boolean(false));
    }

    #[test]
    fn protect_injects_filters_per_user() {
        let mut policy = AccessPolicy::new();
        policy.add_rule("kim", rule(&["1000"], true));
        let protected = policy.protect("kim", "v", plan()).unwrap();
        assert_eq!(vdm_plan::plan_stats(&protected).filters, 1);
        // Deny-by-default for unknown users once DAC is configured.
        assert!(policy.protect("mallory", "v", plan()).is_err());
        // No configuration at all: pass-through.
        let open = AccessPolicy::new();
        let p = open.protect("anyone", "v", plan()).unwrap();
        assert_eq!(vdm_plan::plan_stats(&p).filters, 0);
    }

    #[test]
    fn unknown_column_is_an_error() {
        let p = plan();
        let r = DacRule {
            view: "v".into(),
            column: "nope".into(),
            allowed: vec![Value::Int(1)],
            allow_null: false,
        };
        assert!(r.predicate(&p.schema()).is_err());
    }
}
