//! The Virtual Data Model (VDM) layer — §2.3, §5, §6 of the paper.
//!
//! VDM views expose application data as standardized, business-oriented
//! views in three layers (Fig. 2): **basic** views close to the tables,
//! **composite** views built on basic views, and **consumption** views
//! tailored to one UI or API. Views carry **associations** — declared
//! many-to-one relationships that a path expression turns into an
//! augmentation join on demand.
//!
//! This crate also implements the application-level patterns the paper's
//! optimizations exist for:
//!
//! * [`dac`] — record-wise data access control: per-user filters injected
//!   above consumption views (the two guarded joins of Fig. 4);
//! * [`draft`] — the active ⊎ draft stateless-app pattern (Fig. 11b);
//! * [`extension`] — upgrade-safe custom-field extension via augmentation
//!   self-joins and case joins (Fig. 8/9, §6.3);
//! * [`verify`] — the §7.3 tool that checks a declared join cardinality
//!   against the actual data.

pub mod dac;
pub mod draft;
pub mod extension;
pub mod model;
pub mod verify;

pub use dac::{AccessPolicy, DacRule};
pub use draft::DraftPair;
pub use extension::{extend_with_fields, ExtensionSpec};
pub use model::{Association, VdmModel, VdmView, ViewLayer};
pub use verify::{verify_join_cardinality, CardinalityReport};
