//! The draft-table pattern (Fig. 11b).
//!
//! Stateless cloud apps keep in-progress user input in a separate *draft*
//! table next to the *active* table. Operational queries see the union of
//! both (with a branch-id column so the optimizer can derive ⟨bid, key⟩
//! uniqueness — Fig. 12b); analytical queries see only the active data.

use std::sync::Arc;
use vdm_catalog::TableDef;
use vdm_expr::Expr;
use vdm_plan::{LogicalPlan, PlanRef};
use vdm_types::{Result, VdmError};

/// Branch-id value for active rows.
pub const BID_ACTIVE: i64 = 0;
/// Branch-id value for draft rows.
pub const BID_DRAFT: i64 = 1;

/// An active/draft table pair forming one logical document table.
#[derive(Debug, Clone)]
pub struct DraftPair {
    pub active: Arc<TableDef>,
    pub draft: Arc<TableDef>,
}

impl DraftPair {
    /// Pairs two tables; their schemas must agree column-for-column (the
    /// draft table mirrors the active one).
    pub fn new(active: Arc<TableDef>, draft: Arc<TableDef>) -> Result<DraftPair> {
        if active.schema.len() != draft.schema.len() {
            return Err(VdmError::Catalog(format!(
                "draft table {:?} does not mirror {:?}: {} vs {} columns",
                draft.name,
                active.name,
                draft.schema.len(),
                active.schema.len()
            )));
        }
        for (a, d) in active.schema.fields().iter().zip(draft.schema.fields()) {
            if !a.ty.accepts(&d.ty) {
                return Err(VdmError::Catalog(format!(
                    "draft column {:?} type mismatch: {} vs {}",
                    d.name, a.ty, d.ty
                )));
            }
        }
        Ok(DraftPair { active, draft })
    }

    /// The operational plan: `bid` column plus the union of both tables
    /// (the Fig. 11b / Fig. 12b shape, branch-id first).
    pub fn operational_plan(&self) -> Result<PlanRef> {
        let mk = |table: &Arc<TableDef>, bid: i64| -> Result<PlanRef> {
            let scan = LogicalPlan::scan(Arc::clone(table));
            let schema = scan.schema();
            let mut exprs = vec![(Expr::int(bid), "bid".to_string())];
            for (i, f) in schema.fields().iter().enumerate() {
                exprs.push((Expr::col(i), f.name.clone()));
            }
            LogicalPlan::project(scan, exprs)
        };
        LogicalPlan::union_all(vec![mk(&self.active, BID_ACTIVE)?, mk(&self.draft, BID_DRAFT)?])
    }

    /// The analytical plan: active data only, no branch column.
    pub fn analytical_plan(&self) -> PlanRef {
        LogicalPlan::scan(Arc::clone(&self.active))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vdm_catalog::TableBuilder;
    use vdm_plan::{plan_stats, unique_sets, DeriveOptions};
    use vdm_types::SqlType;

    fn doc_table(name: &str) -> Arc<TableDef> {
        Arc::new(
            TableBuilder::new(name)
                .column("doc_id", SqlType::Int, false)
                .column("amount", SqlType::Decimal { scale: 2 }, false)
                .primary_key(&["doc_id"])
                .build()
                .unwrap(),
        )
    }

    #[test]
    fn operational_plan_has_branch_id_uniqueness() {
        let pair = DraftPair::new(doc_table("sales_doc"), doc_table("sales_doc_draft")).unwrap();
        let plan = pair.operational_plan().unwrap();
        let stats = plan_stats(&plan);
        assert_eq!(stats.unions, 1);
        assert_eq!(stats.max_union_width, 2);
        assert_eq!(plan.schema().field(0).name, "bid");
        // Fig. 12b: ⟨bid, doc_id⟩ is derivably unique.
        let sets = unique_sets(&plan, &DeriveOptions::all());
        let expected: std::collections::BTreeSet<usize> = [0usize, 1].into_iter().collect();
        assert!(
            vdm_plan::props::covers_unique(&sets, &expected),
            "⟨bid, key⟩ must be unique: {sets:?}"
        );
    }

    #[test]
    fn analytical_plan_is_active_only() {
        let pair = DraftPair::new(doc_table("d"), doc_table("d_draft")).unwrap();
        let stats = plan_stats(&pair.analytical_plan());
        assert_eq!(stats.table_instances, 1);
        assert_eq!(stats.unions, 0);
    }

    #[test]
    fn mismatched_draft_schema_rejected() {
        let active = doc_table("a");
        let bad = Arc::new(
            TableBuilder::new("a_draft").column("doc_id", SqlType::Int, false).build().unwrap(),
        );
        assert!(DraftPair::new(active, bad).is_err());
        let bad_type = Arc::new(
            TableBuilder::new("a_draft")
                .column("doc_id", SqlType::Int, false)
                .column("amount", SqlType::Text, false)
                .build()
                .unwrap(),
        );
        assert!(DraftPair::new(doc_table("a2"), bad_type).is_err());
    }
}
