//! VDM views, layers, and associations.

use std::collections::HashMap;
use std::sync::Arc;
use vdm_catalog::TableDef;
use vdm_expr::Expr;
use vdm_plan::{DeclaredCardinality, JoinKind, LogicalPlan, PlanRef, ViewRegistry};
use vdm_types::{Result, VdmError};

/// The three VDM layers (paper Fig. 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ViewLayer {
    /// Close to the tables; adds business names, semantics, associations.
    Basic,
    /// Built on basic views for a functional purpose.
    Composite,
    /// Tailored for one UI/API; top of the stack.
    Consumption,
}

/// A declared many-to-one relationship from a view to a target view.
///
/// Associations power the CDS *path expression*: `view.assoc.field` adds a
/// left-outer augmentation join to the target and projects the field — the
/// "easy and convenient way to join a view and project columns from it"
/// (§2.3). Unused associations are exactly the UAJs of §4.
#[derive(Debug, Clone)]
pub struct Association {
    pub name: String,
    /// Target view (or table) name.
    pub target: String,
    /// (local column, target column) equi-pairs.
    pub on: Vec<(String, String)>,
    /// Declared cardinality (associations are many-to-one by design).
    pub cardinality: DeclaredCardinality,
}

/// A VDM view: a named plan with a layer tag and associations.
#[derive(Debug, Clone)]
pub struct VdmView {
    pub name: String,
    pub layer: ViewLayer,
    pub plan: PlanRef,
    pub associations: Vec<Association>,
}

/// The model: all VDM views plus the registry used by the SQL binder.
#[derive(Debug, Default)]
pub struct VdmModel {
    views: HashMap<String, VdmView>,
    registry: ViewRegistry,
}

impl VdmModel {
    /// Empty model.
    pub fn new() -> VdmModel {
        VdmModel::default()
    }

    /// Registers a view; consumption views may build on any layer, but a
    /// basic view may not depend on composite/consumption views — we
    /// enforce only name uniqueness here (layer discipline is a modeling
    /// convention, not a hard database rule).
    pub fn register(&mut self, view: VdmView) -> Result<()> {
        let key = view.name.to_ascii_lowercase();
        if self.views.contains_key(&key) {
            return Err(VdmError::Catalog(format!("VDM view {:?} already exists", view.name)));
        }
        self.registry.register(&view.name, view.plan.clone());
        self.views.insert(key, view);
        Ok(())
    }

    /// Replaces a view's plan (used by the extension mechanism: the
    /// consumption view is redefined, interim views stay untouched).
    pub fn replace_plan(&mut self, name: &str, plan: PlanRef) -> Result<()> {
        let key = name.to_ascii_lowercase();
        let view = self
            .views
            .get_mut(&key)
            .ok_or_else(|| VdmError::Catalog(format!("unknown VDM view {name:?}")))?;
        view.plan = plan.clone();
        self.registry.register(name, plan);
        Ok(())
    }

    /// Looks a view up.
    pub fn view(&self, name: &str) -> Option<&VdmView> {
        self.views.get(&name.to_ascii_lowercase())
    }

    /// The registry handle for the SQL binder.
    pub fn registry(&self) -> &ViewRegistry {
        &self.registry
    }

    /// Number of registered views, per layer.
    pub fn layer_counts(&self) -> (usize, usize, usize) {
        let mut counts = (0, 0, 0);
        for v in self.views.values() {
            match v.layer {
                ViewLayer::Basic => counts.0 += 1,
                ViewLayer::Composite => counts.1 += 1,
                ViewLayer::Consumption => counts.2 += 1,
            }
        }
        counts
    }

    /// Creates a basic view directly over a table, exposing all columns
    /// under business-oriented names (`renames`: table column → view name).
    pub fn basic_view_over(
        &mut self,
        name: &str,
        table: Arc<TableDef>,
        renames: &[(&str, &str)],
        associations: Vec<Association>,
    ) -> Result<PlanRef> {
        let scan = LogicalPlan::scan(table);
        let schema = scan.schema();
        let exprs = schema
            .fields()
            .iter()
            .enumerate()
            .map(|(i, f)| {
                let new_name = renames
                    .iter()
                    .find(|(from, _)| from.eq_ignore_ascii_case(&f.name))
                    .map(|(_, to)| to.to_string())
                    .unwrap_or_else(|| f.name.clone());
                (Expr::col(i), new_name)
            })
            .collect();
        let plan = LogicalPlan::project(scan, exprs)?;
        self.register(VdmView {
            name: name.to_string(),
            layer: ViewLayer::Basic,
            plan: plan.clone(),
            associations,
        })?;
        Ok(plan)
    }

    /// Resolves a CDS path expression `view.assoc`: returns the view's plan
    /// augmented with a left-outer many-to-one join to the association
    /// target, exposing the target's columns after the view's own.
    pub fn resolve_association(&self, view_name: &str, assoc_name: &str) -> Result<PlanRef> {
        let view = self
            .view(view_name)
            .ok_or_else(|| VdmError::Catalog(format!("unknown VDM view {view_name:?}")))?;
        let assoc = view
            .associations
            .iter()
            .find(|a| a.name.eq_ignore_ascii_case(assoc_name))
            .ok_or_else(|| {
                VdmError::Catalog(format!("view {view_name:?} has no association {assoc_name:?}"))
            })?;
        let target = self.view(&assoc.target).map(|v| v.plan.clone()).ok_or_else(|| {
            VdmError::Catalog(format!("association target {:?} not found", assoc.target))
        })?;
        let ls = view.plan.schema();
        let rs = target.schema();
        let on = assoc
            .on
            .iter()
            .map(|(l, r)| Ok((ls.index_of_or_err(l)?, rs.index_of_or_err(r)?)))
            .collect::<Result<Vec<_>>>()?;
        LogicalPlan::join(
            view.plan.clone(),
            target,
            JoinKind::LeftOuter,
            on,
            None,
            Some(assoc.cardinality),
            false,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vdm_catalog::TableBuilder;
    use vdm_types::SqlType;

    fn table(name: &str, cols: &[&str]) -> Arc<TableDef> {
        let mut b = TableBuilder::new(name);
        for c in cols {
            b = b.column(*c, SqlType::Int, false);
        }
        Arc::new(b.primary_key(&[cols[0]]).build().unwrap())
    }

    #[test]
    fn basic_view_renames_columns() {
        let mut m = VdmModel::new();
        let plan = m
            .basic_view_over(
                "I_Customer",
                table("kna1", &["kunnr", "land1"]),
                &[("kunnr", "Customer"), ("land1", "Country")],
                vec![],
            )
            .unwrap();
        assert_eq!(plan.schema().field(0).name, "Customer");
        assert_eq!(plan.schema().field(1).name, "Country");
        assert!(m.view("i_customer").is_some());
        assert!(m.registry().get("I_Customer").is_some());
    }

    #[test]
    fn association_resolution_builds_aj() {
        let mut m = VdmModel::new();
        m.basic_view_over("I_Customer", table("kna1", &["kunnr", "land1"]), &[], vec![]).unwrap();
        m.basic_view_over(
            "I_SalesOrder",
            table("vbak", &["vbeln", "kunnr"]),
            &[],
            vec![Association {
                name: "_Customer".into(),
                target: "I_Customer".into(),
                on: vec![("kunnr".into(), "kunnr".into())],
                cardinality: DeclaredCardinality::ManyToOne,
            }],
        )
        .unwrap();
        let plan = m.resolve_association("I_SalesOrder", "_Customer").unwrap();
        let stats = vdm_plan::plan_stats(&plan);
        assert_eq!(stats.joins, 1);
        assert_eq!(stats.left_outer_joins, 1);
        assert_eq!(plan.schema().len(), 4);
        // Unknown names error.
        assert!(m.resolve_association("I_SalesOrder", "_Nope").is_err());
        assert!(m.resolve_association("nope", "_Customer").is_err());
    }

    #[test]
    fn duplicate_views_rejected_and_replace_works() {
        let mut m = VdmModel::new();
        let t = table("t", &["k"]);
        m.basic_view_over("v", Arc::clone(&t), &[], vec![]).unwrap();
        assert!(m.basic_view_over("V", t, &[], vec![]).is_err());
        let new_plan = LogicalPlan::scan(table("u", &["k"]));
        m.replace_plan("v", new_plan.clone()).unwrap();
        assert_eq!(m.registry().get("v").unwrap().schema(), new_plan.schema());
        assert!(m.replace_plan("zzz", new_plan).is_err());
    }

    #[test]
    fn layer_counts() {
        let mut m = VdmModel::new();
        m.basic_view_over("b1", table("t1", &["k"]), &[], vec![]).unwrap();
        let p = m.view("b1").unwrap().plan.clone();
        m.register(VdmView {
            name: "c1".into(),
            layer: ViewLayer::Composite,
            plan: p.clone(),
            associations: vec![],
        })
        .unwrap();
        m.register(VdmView {
            name: "q1".into(),
            layer: ViewLayer::Consumption,
            plan: p,
            associations: vec![],
        })
        .unwrap();
        assert_eq!(m.layer_counts(), (1, 1, 1));
    }
}
