//! Upgrade-safe custom-field extension (§5, Fig. 8/9; §6.3, Fig. 13b).
//!
//! A customer adds field `ext` to an SAP-managed table `T`. The stable
//! consumption view `CV'` must expose `ext`, but the interim views between
//! `CV'` and `T` are SAP-internal and must not be redefined. SAP's answer:
//! redefine only `CV'`, joining the *existing* view back to `T` on its key
//! — an augmentation self-join that a capable optimizer removes again.
//!
//! When `T` is draft-enabled, the logical table is `active ⊎ draft`
//! (both extended with `ext`), and the self-join target becomes a UNION
//! ALL — the shape only a **case join** reliably collapses (Fig. 14).

use crate::draft::DraftPair;
use std::sync::Arc;
use vdm_catalog::TableDef;
use vdm_expr::Expr;
use vdm_plan::{DeclaredCardinality, JoinKind, LogicalPlan, PlanRef};
use vdm_types::{Result, VdmError};

/// How to expose custom fields on an existing view.
#[derive(Debug, Clone)]
pub struct ExtensionSpec {
    /// (view column, base-table column) key pairs the self-join uses.
    pub key: Vec<(String, String)>,
    /// The custom fields to expose from the base table.
    pub fields: Vec<String>,
}

/// Extends `view_plan` with custom `fields` of `table` via an augmentation
/// self-join on the key (Fig. 9b). The result exposes the view's columns
/// followed by the custom fields.
pub fn extend_with_fields(
    view_plan: PlanRef,
    table: Arc<TableDef>,
    spec: &ExtensionSpec,
) -> Result<PlanRef> {
    let aug = LogicalPlan::scan(Arc::clone(&table));
    let exposed = build_extension_join(view_plan, aug, &table, spec, false)?;
    Ok(exposed)
}

/// Extends a view over a draft-enabled logical table: the augmenter is the
/// branch-id UNION ALL of active and draft (both carrying the custom
/// fields). `use_case_join` declares the ASJ intent (§6.3) — without it the
/// optimizer must fall back to heuristic recognition (the Fig. 14a regime).
///
/// `bid_column`: the view column carrying the branch id (the view must have
/// been built over [`DraftPair::operational_plan`]).
pub fn extend_draft_with_fields(
    view_plan: PlanRef,
    pair: &DraftPair,
    bid_column: &str,
    spec: &ExtensionSpec,
    use_case_join: bool,
) -> Result<PlanRef> {
    // Augmenter: bid ⊎ union of both tables, projecting bid + key + fields.
    let mk = |table: &Arc<TableDef>, bid: i64| -> Result<PlanRef> {
        let scan = LogicalPlan::scan(Arc::clone(table));
        let schema = scan.schema();
        let mut exprs = vec![(Expr::int(bid), "bid".to_string())];
        for (_, key_col) in &spec.key {
            let idx = schema.index_of_or_err(key_col)?;
            exprs.push((Expr::col(idx), key_col.clone()));
        }
        for f in &spec.fields {
            let idx = schema.index_of_or_err(f)?;
            exprs.push((Expr::col(idx), f.clone()));
        }
        LogicalPlan::project(scan, exprs)
    };
    let aug = LogicalPlan::union_all(vec![
        mk(&pair.active, crate::draft::BID_ACTIVE)?,
        mk(&pair.draft, crate::draft::BID_DRAFT)?,
    ])?;
    let vs = view_plan.schema();
    let bid_l = vs.index_of_or_err(bid_column)?;
    let mut on = vec![(bid_l, 0usize)];
    for (i, (view_col, _)) in spec.key.iter().enumerate() {
        on.push((vs.index_of_or_err(view_col)?, 1 + i));
    }
    let join = LogicalPlan::join(
        view_plan,
        aug,
        JoinKind::LeftOuter,
        on,
        None,
        Some(DeclaredCardinality::ManyToOne),
        use_case_join,
    )?;
    // Expose: view columns, then the custom fields.
    let js = join.schema();
    let nl = vs.len();
    let mut exprs: Vec<(Expr, String)> =
        (0..nl).map(|i| (Expr::col(i), js.field(i).name.clone())).collect();
    for (k, f) in spec.fields.iter().enumerate() {
        exprs.push((Expr::col(nl + 1 + spec.key.len() + k), f.clone()));
    }
    LogicalPlan::project(join, exprs)
}

fn build_extension_join(
    view_plan: PlanRef,
    aug: PlanRef,
    table: &TableDef,
    spec: &ExtensionSpec,
    case_join: bool,
) -> Result<PlanRef> {
    if spec.fields.is_empty() {
        return Err(VdmError::Plan("extension needs at least one custom field".into()));
    }
    let vs = view_plan.schema();
    let ts = aug.schema();
    let on = spec
        .key
        .iter()
        .map(|(v, t)| Ok((vs.index_of_or_err(v)?, ts.index_of_or_err(t)?)))
        .collect::<Result<Vec<_>>>()?;
    if on.is_empty() {
        return Err(VdmError::Plan("extension self-join needs key columns".into()));
    }
    // Sanity: the key must be unique on the base table, else this is not an
    // augmentation join at all.
    let key_ords: Vec<usize> =
        spec.key.iter().map(|(_, t)| table.schema.index_of_or_err(t)).collect::<Result<_>>()?;
    if !table.cols_unique(&key_ords) {
        return Err(VdmError::Plan(format!(
            "extension key {:?} is not unique on {:?}",
            spec.key, table.name
        )));
    }
    let join = LogicalPlan::join(view_plan, aug, JoinKind::LeftOuter, on, None, None, case_join)?;
    // Expose view columns + the custom fields.
    let js = join.schema();
    let nl = vs.len();
    let mut exprs: Vec<(Expr, String)> =
        (0..nl).map(|i| (Expr::col(i), js.field(i).name.clone())).collect();
    for f in &spec.fields {
        let idx = ts.index_of_or_err(f)?;
        exprs.push((Expr::col(nl + idx), f.clone()));
    }
    LogicalPlan::project(join, exprs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vdm_catalog::TableBuilder;
    use vdm_optimizer::{Optimizer, Profile};
    use vdm_plan::plan_stats;
    use vdm_types::SqlType;

    fn base_table() -> Arc<TableDef> {
        Arc::new(
            TableBuilder::new("vbak")
                .column("vbeln", SqlType::Int, false)
                .column("kunnr", SqlType::Int, false)
                .column("zz_priority", SqlType::Text, true)
                .primary_key(&["vbeln"])
                .build()
                .unwrap(),
        )
    }

    /// A stand-in for the SAP-managed interim view stack: it does NOT
    /// project the custom field.
    fn managed_view(table: &Arc<TableDef>) -> PlanRef {
        LogicalPlan::project(
            LogicalPlan::scan(Arc::clone(table)),
            vec![(Expr::col(0), "SalesOrder".into()), (Expr::col(1), "SoldToParty".into())],
        )
        .unwrap()
    }

    #[test]
    fn extension_exposes_field_and_optimizes_away() {
        let t = base_table();
        let view = managed_view(&t);
        let spec = ExtensionSpec {
            key: vec![("SalesOrder".into(), "vbeln".into())],
            fields: vec!["zz_priority".into()],
        };
        let extended = extend_with_fields(view, Arc::clone(&t), &spec).unwrap();
        assert_eq!(extended.schema().len(), 3);
        assert_eq!(extended.schema().field(2).name, "zz_priority");
        // The self-join must be optimized out by the HANA profile (Fig. 9c).
        let opt = Optimizer::hana().optimize(&extended).unwrap();
        let stats = plan_stats(&opt);
        assert_eq!(stats.joins, 0, "{}", vdm_plan::explain(&opt));
        assert_eq!(stats.table_instances, 1);
        // Weaker profiles keep paying for it.
        let pg = Optimizer::new(Profile::postgres()).optimize(&extended).unwrap();
        assert_eq!(plan_stats(&pg).joins, 1);
    }

    #[test]
    fn extension_validates_inputs() {
        let t = base_table();
        let view = managed_view(&t);
        let no_fields =
            ExtensionSpec { key: vec![("SalesOrder".into(), "vbeln".into())], fields: vec![] };
        assert!(extend_with_fields(view.clone(), Arc::clone(&t), &no_fields).is_err());
        let bad_key = ExtensionSpec {
            key: vec![("SoldToParty".into(), "kunnr".into())],
            fields: vec!["zz_priority".into()],
        };
        assert!(
            extend_with_fields(view, Arc::clone(&t), &bad_key).is_err(),
            "kunnr is not unique on vbak"
        );
    }

    #[test]
    fn draft_extension_builds_case_join_shape() {
        let active = base_table();
        let draft = Arc::new(
            TableBuilder::new("vbak_draft")
                .column("vbeln", SqlType::Int, false)
                .column("kunnr", SqlType::Int, false)
                .column("zz_priority", SqlType::Text, true)
                .primary_key(&["vbeln"])
                .build()
                .unwrap(),
        );
        let pair = DraftPair::new(active, draft).unwrap();
        // The "managed view" over the logical table, without the custom field.
        let op = pair.operational_plan().unwrap();
        let schema = op.schema();
        let exprs = vec![
            (Expr::col(0), schema.field(0).name.clone()), // bid
            (Expr::col(1), "SalesOrder".to_string()),
            (Expr::col(2), "SoldToParty".to_string()),
        ];
        let view = LogicalPlan::project(op, exprs).unwrap();
        let spec = ExtensionSpec {
            key: vec![("SalesOrder".into(), "vbeln".into())],
            fields: vec!["zz_priority".into()],
        };
        let with_intent =
            extend_draft_with_fields(view.clone(), &pair, "bid", &spec, true).unwrap();
        let without_intent = extend_draft_with_fields(view, &pair, "bid", &spec, false).unwrap();
        // Declared intent collapses the ASJ; both unions merge into one.
        let hana = Optimizer::hana();
        let opt = hana.optimize(&with_intent).unwrap();
        assert_eq!(plan_stats(&opt).joins, 0, "{}", vdm_plan::explain(&opt));
        // The heuristic also manages this *simple* shape (view is shallow) —
        // per Fig. 14a some shapes work without intent.
        let opt = hana.optimize(&without_intent).unwrap();
        assert_eq!(plan_stats(&opt).joins, 0);
        // Without either capability the join stays.
        let weak = Optimizer::new(
            Profile::hana()
                .without(vdm_optimizer::Capability::CaseJoin)
                .without(vdm_optimizer::Capability::AsjUnionHeuristic),
        );
        let kept = weak.optimize(&with_intent).unwrap();
        assert!(plan_stats(&kept).joins >= 1);
    }
}
