//! The query optimizer — the paper's primary subject.
//!
//! A rule-based rewriter whose individual capabilities can be switched per
//! [`Profile`]. The five built-in profiles (`hana`, `postgres`, `system_x`,
//! `system_y`, `system_z`) encode the capability sets the paper observed in
//! the five evaluated DBMSs, so running the same rule machinery at the five
//! levels regenerates Tables 1–4 *mechanically*: the harness inspects
//! optimized plans, nothing is hard-coded.
//!
//! Rule inventory (paper section in parentheses):
//!
//! * [`prune`] — projection pruning + **unused augmentation join (UAJ)
//!   elimination** (§4.2–4.3), including the AJ 2b empty-augmenter case and
//!   the FK-witnessed AJ 1a inner-join case;
//! * [`asj`] — **augmentation self-join elimination** with field re-wiring
//!   (§5), anchor-side UNION ALL traversal (Fig. 13a), and the **case
//!   join** for augmenter-side UNION ALL (§6.3 / Fig. 13b);
//! * [`limit_pushdown`] — LIMIT across augmentation joins (§4.4);
//! * [`precision`] — `allow_precision_loss` aggregation/rounding
//!   interchange (§7.1) and eager aggregation below AJ joins;
//! * [`filters`] — conjunct-wise filter pushdown and plan cleanup
//!   (baseline rules every evaluated system has).

pub mod asj;
pub mod ctx;
pub mod filters;
pub mod join_order;
pub mod limit_pushdown;
pub mod precision;
pub mod profile;
pub mod prune;

pub use ctx::RewriteCtx;
pub use profile::{Capability, Profile};

use vdm_plan::{
    plan_digest, plan_stats, CacheStats, CardOverrides, Cardinality, PlanRef, PropertyCache,
    StatsProvider,
};
use vdm_types::Result;

/// The optimizer: a capability profile plus a fixpoint driver.
#[derive(Debug, Clone)]
pub struct Optimizer {
    profile: Profile,
    property_cache: bool,
}

impl Optimizer {
    /// Optimizer with the given capability profile.
    pub fn new(profile: Profile) -> Optimizer {
        Optimizer { profile, property_cache: true }
    }

    /// Optimizer with every capability (the HANA profile).
    pub fn hana() -> Optimizer {
        Optimizer::new(Profile::hana())
    }

    /// Toggles the annotated-plan fast path. With `false`, the optimizer
    /// reproduces the pre-refactor cost model: every property probe
    /// re-derives from scratch, every pruning pass re-normalizes UNION
    /// ALL children with stacked projections (so plans grow each round,
    /// exactly the behaviour that defeated fixpoint detection on every
    /// UNION-bearing plan), and the loop always runs all its rounds.
    /// Kept so `opt_sweep` can measure the refactor's speedup against an
    /// honest baseline. Final plans are identical either way: `cleanup`
    /// collapses the stacked projections.
    pub fn with_property_cache(mut self, enabled: bool) -> Optimizer {
        self.property_cache = enabled;
        self
    }

    /// The active profile.
    pub fn profile(&self) -> &Profile {
        &self.profile
    }

    /// Optimizes a plan to fixpoint.
    pub fn optimize(&self, plan: &PlanRef) -> Result<PlanRef> {
        Ok(self.optimize_traced(plan)?.0)
    }

    /// Optimizes a plan and reports, pass by pass, which rewrites changed
    /// it — the "why did my plan shrink" view a VDM developer asks for.
    /// Beyond the pass-level [`Trace::steps`], every rule firing is
    /// collected as a structured [`vdm_obs::RewriteEvent`] in
    /// [`Trace::events`] (rule name, plan-node id, cardinality evidence).
    pub fn optimize_traced(&self, plan: &PlanRef) -> Result<(PlanRef, Trace)> {
        self.optimize_traced_with(plan, None, None)
    }

    /// [`Optimizer::optimize_traced`] plus cost-model inputs: base-table
    /// statistics enable the cost-based join-ordering pass (when the
    /// profile has [`Capability::CostBasedJoinOrdering`]), and observed
    /// per-subtree cardinalities override model estimates — the feedback
    /// path re-optimization uses. With `stats: None` the optimizer is
    /// byte-for-byte the rule-based rewriter it always was.
    pub fn optimize_traced_with(
        &self,
        plan: &PlanRef,
        stats: Option<&dyn StatsProvider>,
        overrides: Option<&CardOverrides>,
    ) -> Result<(PlanRef, Trace)> {
        let started = std::time::Instant::now();
        vdm_obs::rewrite::begin_collect();
        let result = self.optimize_traced_inner(plan, stats, overrides);
        let events = vdm_obs::rewrite::finish_collect();
        let (out, mut trace) = result?;
        trace.events = events;
        trace.optimize_nanos = started.elapsed().as_nanos() as u64;
        let reg = vdm_obs::registry::MetricsRegistry::global();
        reg.inc(vdm_obs::names::OPT_PROPERTY_CACHE_HITS_TOTAL, trace.cache.hits);
        reg.inc(vdm_obs::names::OPT_PROPERTY_CACHE_MISSES_TOTAL, trace.cache.misses);
        Ok((out, trace))
    }

    fn optimize_traced_inner(
        &self,
        plan: &PlanRef,
        stats: Option<&dyn StatsProvider>,
        overrides: Option<&CardOverrides>,
    ) -> Result<(PlanRef, Trace)> {
        let p = &self.profile;
        let props =
            if self.property_cache { PropertyCache::new() } else { PropertyCache::passthrough() };
        let ctx = RewriteCtx::new(p, &props).with_legacy_normalize(!self.property_cache);
        let mut trace = Trace::default();
        let mut plan = plan.clone();
        if p.has(Capability::ConstantFolding) {
            plan = trace.step("constant folding", plan, |pl| filters::fold_constants(&pl))?;
        }
        if p.has(Capability::FilterPushdown) {
            plan = trace.step("filter pushdown", plan, |pl| filters::pushdown_filters(&pl))?;
        }
        // Fixpoint loop: rules enable each other (an ASJ rewrite exposes a
        // UAJ; a UAJ removal exposes a limit pushdown; ...). Convergence is
        // detected by `Arc` identity with a structural-digest fallback; the
        // digest — unlike node counts — also catches count-neutral rewrites
        // (e.g. an ASJ rewiring that swaps one join input for another of
        // the same size).
        //
        // `noop` remembers, per pass, the plan it last returned unchanged:
        // a pass whose input is pointer-identical to that plan is a
        // *memoized* no-op (its result on exactly this input is already
        // known) and is skipped — no idempotence assumption involved. Only
        // the annotated-plan mode skips; the legacy cost model re-runs
        // everything, like the pre-refactor optimizer did.
        let mut noop: [Option<PlanRef>; 6] = Default::default();
        // Digest of the plan as of the previous round's end, carried
        // forward so each productive round hashes the plan once.
        let mut prev_digest: Option<u64> = None;
        let fast = self.property_cache;
        let skip = |memo: &Option<PlanRef>, plan: &PlanRef| {
            fast && memo.as_ref().is_some_and(|o| std::sync::Arc::ptr_eq(o, plan))
        };
        macro_rules! pass {
            ($idx:expr, $name:expr, $f:expr) => {
                if !skip(&noop[$idx], &plan) {
                    let input = plan.clone();
                    plan = trace.step($name, plan, $f)?;
                    noop[$idx] = std::sync::Arc::ptr_eq(&plan, &input).then(|| plan.clone());
                }
            };
        }
        for round in 0..8 {
            trace.round = round;
            let prev = plan.clone();
            if p.any_asj() {
                pass!(0, "ASJ elimination", |pl| asj::asj_pass(&pl, &ctx));
            }
            if p.has(Capability::ProjectionPruning) || p.has(Capability::UajElimination) {
                pass!(1, "pruning + UAJ elimination", |pl| prune::prune_pass(&pl, &ctx));
            }
            if p.has(Capability::LimitPushdownAj) {
                pass!(2, "limit pushdown", |pl| limit_pushdown::limit_pass(&pl, &ctx));
            }
            if p.has(Capability::AllowPrecisionLoss) {
                pass!(3, "precision-loss interchange", |pl| precision::precision_pass(&pl));
            }
            if p.has(Capability::EagerAggregation) {
                pass!(4, "eager aggregation", |pl| precision::eager_agg_pass(&pl, &ctx));
            }
            if p.has(Capability::RemoveRedundantDistinct) {
                pass!(5, "distinct removal", |pl| filters::remove_redundant_distinct(&pl, &ctx));
            }
            if self.property_cache {
                if std::sync::Arc::ptr_eq(&plan, &prev) {
                    break;
                }
                let digest = plan_digest(&plan);
                if prev_digest == Some(digest) {
                    break;
                }
                prev_digest = Some(digest);
            }
        }
        // Cost-based join ordering runs once, after the rule fixpoint:
        // UAJ/ASJ-eliminated joins are already gone and never enumerated.
        // Gated on statistics being supplied so plain `optimize()` callers
        // (and stats-less tests) see the rule-based planner unchanged.
        if p.has(Capability::CostBasedJoinOrdering) {
            if let Some(stats) = stats {
                let mut card = Cardinality::new(&props, p.derive_options()).with_stats(stats);
                if let Some(ov) = overrides {
                    card = card.with_overrides(ov);
                }
                plan = trace
                    .step("join ordering", plan, |pl| join_order::join_order_pass(&pl, &card))?;
            }
        }
        let out = filters::cleanup(&plan)?;
        trace.cache = props.stats();
        Ok((out, trace))
    }
}

/// A pass-level record of what the optimizer did.
#[derive(Debug, Default, Clone)]
pub struct Trace {
    round: usize,
    /// `(round, pass name, stats before, stats after)` for every pass that
    /// changed the plan.
    pub steps: Vec<(usize, String, vdm_plan::PlanStats, vdm_plan::PlanStats)>,
    /// Every individual rule firing, in order (filled by
    /// [`Optimizer::optimize_traced`]).
    pub events: Vec<vdm_obs::RewriteEvent>,
    /// Wall-clock time spent in the optimizer, in nanoseconds.
    pub optimize_nanos: u64,
    /// Property-cache hit/miss counters for this `optimize()` call.
    pub cache: CacheStats,
}

impl Trace {
    fn step(
        &mut self,
        name: &str,
        plan: PlanRef,
        f: impl FnOnce(PlanRef) -> Result<PlanRef>,
    ) -> Result<PlanRef> {
        let before = plan_stats(&plan);
        vdm_obs::rewrite::begin_pass(self.round, name, &plan);
        let out = f(plan)?;
        let after = plan_stats(&out);
        if before != after {
            self.steps.push((self.round, name.to_string(), before, after));
        }
        Ok(out)
    }

    /// Firings per rule name — the counts the metrics registry exposes as
    /// `vdm_rewrite_fired_total{rule="..."}`.
    pub fn hit_counts(&self) -> std::collections::BTreeMap<String, u64> {
        let mut counts = std::collections::BTreeMap::new();
        for e in &self.events {
            *counts.entry(e.rule.clone()).or_insert(0) += 1;
        }
        counts
    }

    /// One line per rule firing (rule, node id, evidence, size digest).
    pub fn render_events(&self) -> String {
        if self.events.is_empty() {
            return "no rewrites fired".to_string();
        }
        let mut out = String::new();
        for e in &self.events {
            out.push_str(&e.render());
            out.push('\n');
        }
        out
    }

    /// The `[optimize ...]` stats line shown in the EXPLAIN ANALYZE
    /// header: optimize time plus property-cache effectiveness.
    pub fn render_opt_stats(&self) -> String {
        format!(
            "[optimize time={:.3}ms | property cache: {} hits, {} misses, {:.0}% hit rate]",
            self.optimize_nanos as f64 / 1e6,
            self.cache.hits,
            self.cache.misses,
            self.cache.hit_rate() * 100.0
        )
    }

    /// Human-readable rendering.
    pub fn render(&self) -> String {
        if self.steps.is_empty() {
            return "no rewrites applied".to_string();
        }
        let mut out = String::new();
        for (round, name, before, after) in &self.steps {
            out.push_str(&format!(
                "round {round}: {name}: joins {} -> {}, tables {} -> {}, operators {} -> {}\n",
                before.joins,
                after.joins,
                before.table_instances,
                after.table_instances,
                before.nodes,
                after.nodes,
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests;
