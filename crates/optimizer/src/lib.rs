//! The query optimizer — the paper's primary subject.
//!
//! A rule-based rewriter whose individual capabilities can be switched per
//! [`Profile`]. The five built-in profiles (`hana`, `postgres`, `system_x`,
//! `system_y`, `system_z`) encode the capability sets the paper observed in
//! the five evaluated DBMSs, so running the same rule machinery at the five
//! levels regenerates Tables 1–4 *mechanically*: the harness inspects
//! optimized plans, nothing is hard-coded.
//!
//! Rule inventory (paper section in parentheses):
//!
//! * [`prune`] — projection pruning + **unused augmentation join (UAJ)
//!   elimination** (§4.2–4.3), including the AJ 2b empty-augmenter case and
//!   the FK-witnessed AJ 1a inner-join case;
//! * [`asj`] — **augmentation self-join elimination** with field re-wiring
//!   (§5), anchor-side UNION ALL traversal (Fig. 13a), and the **case
//!   join** for augmenter-side UNION ALL (§6.3 / Fig. 13b);
//! * [`limit_pushdown`] — LIMIT across augmentation joins (§4.4);
//! * [`precision`] — `allow_precision_loss` aggregation/rounding
//!   interchange (§7.1) and eager aggregation below AJ joins;
//! * [`filters`] — conjunct-wise filter pushdown and plan cleanup
//!   (baseline rules every evaluated system has).

pub mod asj;
pub mod filters;
pub mod limit_pushdown;
pub mod precision;
pub mod profile;
pub mod prune;

pub use profile::{Capability, Profile};

use vdm_plan::{plan_stats, PlanRef};
use vdm_types::Result;

/// The optimizer: a capability profile plus a fixpoint driver.
#[derive(Debug, Clone)]
pub struct Optimizer {
    profile: Profile,
}

impl Optimizer {
    /// Optimizer with the given capability profile.
    pub fn new(profile: Profile) -> Optimizer {
        Optimizer { profile }
    }

    /// Optimizer with every capability (the HANA profile).
    pub fn hana() -> Optimizer {
        Optimizer::new(Profile::hana())
    }

    /// The active profile.
    pub fn profile(&self) -> &Profile {
        &self.profile
    }

    /// Optimizes a plan to fixpoint.
    pub fn optimize(&self, plan: &PlanRef) -> Result<PlanRef> {
        Ok(self.optimize_traced(plan)?.0)
    }

    /// Optimizes a plan and reports, pass by pass, which rewrites changed
    /// it — the "why did my plan shrink" view a VDM developer asks for.
    /// Beyond the pass-level [`Trace::steps`], every rule firing is
    /// collected as a structured [`vdm_obs::RewriteEvent`] in
    /// [`Trace::events`] (rule name, plan-node id, cardinality evidence).
    pub fn optimize_traced(&self, plan: &PlanRef) -> Result<(PlanRef, Trace)> {
        vdm_obs::rewrite::begin_collect();
        let result = self.optimize_traced_inner(plan);
        let events = vdm_obs::rewrite::finish_collect();
        let (out, mut trace) = result?;
        trace.events = events;
        Ok((out, trace))
    }

    fn optimize_traced_inner(&self, plan: &PlanRef) -> Result<(PlanRef, Trace)> {
        let p = &self.profile;
        let mut trace = Trace::default();
        let mut plan = plan.clone();
        if p.has(Capability::ConstantFolding) {
            plan = trace.step("constant folding", plan, |pl| filters::fold_constants(&pl))?;
        }
        if p.has(Capability::FilterPushdown) {
            plan = trace.step("filter pushdown", plan, |pl| filters::pushdown_filters(&pl))?;
        }
        // Fixpoint loop: rules enable each other (an ASJ rewrite exposes a
        // UAJ; a UAJ removal exposes a limit pushdown; ...).
        for round in 0..8 {
            trace.round = round;
            let before = plan_stats(&plan);
            if p.any_asj() {
                plan = trace.step("ASJ elimination", plan, |pl| asj::asj_pass(&pl, p))?;
            }
            if p.has(Capability::ProjectionPruning) || p.has(Capability::UajElimination) {
                plan = trace
                    .step("pruning + UAJ elimination", plan, |pl| prune::prune_pass(&pl, p))?;
            }
            if p.has(Capability::LimitPushdownAj) {
                plan =
                    trace.step("limit pushdown", plan, |pl| limit_pushdown::limit_pass(&pl, p))?;
            }
            if p.has(Capability::AllowPrecisionLoss) {
                plan = trace.step("precision-loss interchange", plan, |pl| {
                    precision::precision_pass(&pl)
                })?;
            }
            if p.has(Capability::EagerAggregation) {
                plan = trace
                    .step("eager aggregation", plan, |pl| precision::eager_agg_pass(&pl, p))?;
            }
            if p.has(Capability::RemoveRedundantDistinct) {
                plan = trace.step("distinct removal", plan, |pl| {
                    filters::remove_redundant_distinct(&pl, p)
                })?;
            }
            if plan_stats(&plan) == before {
                break;
            }
        }
        let out = filters::cleanup(&plan)?;
        Ok((out, trace))
    }
}

/// A pass-level record of what the optimizer did.
#[derive(Debug, Default, Clone)]
pub struct Trace {
    round: usize,
    /// `(round, pass name, stats before, stats after)` for every pass that
    /// changed the plan.
    pub steps: Vec<(usize, String, vdm_plan::PlanStats, vdm_plan::PlanStats)>,
    /// Every individual rule firing, in order (filled by
    /// [`Optimizer::optimize_traced`]).
    pub events: Vec<vdm_obs::RewriteEvent>,
}

impl Trace {
    fn step(
        &mut self,
        name: &str,
        plan: PlanRef,
        f: impl FnOnce(PlanRef) -> Result<PlanRef>,
    ) -> Result<PlanRef> {
        let before = plan_stats(&plan);
        vdm_obs::rewrite::begin_pass(self.round, name, &plan);
        let out = f(plan)?;
        let after = plan_stats(&out);
        if before != after {
            self.steps.push((self.round, name.to_string(), before, after));
        }
        Ok(out)
    }

    /// Firings per rule name — the counts the metrics registry exposes as
    /// `vdm_rewrite_fired_total{rule="..."}`.
    pub fn hit_counts(&self) -> std::collections::BTreeMap<String, u64> {
        let mut counts = std::collections::BTreeMap::new();
        for e in &self.events {
            *counts.entry(e.rule.clone()).or_insert(0) += 1;
        }
        counts
    }

    /// One line per rule firing (rule, node id, evidence, size digest).
    pub fn render_events(&self) -> String {
        if self.events.is_empty() {
            return "no rewrites fired".to_string();
        }
        let mut out = String::new();
        for e in &self.events {
            out.push_str(&e.render());
            out.push('\n');
        }
        out
    }

    /// Human-readable rendering.
    pub fn render(&self) -> String {
        if self.steps.is_empty() {
            return "no rewrites applied".to_string();
        }
        let mut out = String::new();
        for (round, name, before, after) in &self.steps {
            out.push_str(&format!(
                "round {round}: {name}: joins {} -> {}, tables {} -> {}, operators {} -> {}\n",
                before.joins,
                after.joins,
                before.table_instances,
                after.table_instances,
                before.nodes,
                after.nodes,
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests;
