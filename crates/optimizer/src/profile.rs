//! Optimizer capability profiles.
//!
//! Each profile is a set of [`Capability`] flags. The five presets encode
//! what the paper's evaluation observed in SAP HANA Cloud, PostgreSQL 17,
//! and the three anonymous commercial systems (X, Y, Z): Table 1 (UAJ),
//! Table 2 (limit on AJ), Table 3 (ASJ), Table 4 (UNION ALL). The presets
//! set *derivation-level* capabilities; the per-query Y/− outcomes of the
//! tables emerge from running the rules.

use std::collections::BTreeSet;
use vdm_plan::DeriveOptions;

/// One switchable optimizer capability.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Capability {
    // Baseline rules every evaluated system implements.
    ConstantFolding,
    FilterPushdown,
    ProjectionPruning,

    /// Master switch for unused-augmentation-join elimination (§4.3).
    UajElimination,

    // Uniqueness derivations feeding UAJ/ASJ detection (§4.2).
    UniqueFromPrimaryKey,
    UniqueFromGroupBy,
    UniqueFromConstFilter,
    UniqueThroughJoin,
    UniqueThroughSortLimit,
    UnionUniqueDisjoint,
    UnionUniqueBranchId,
    /// §7.3: trust `LEFT OUTER MANY TO ONE JOIN` cardinality declarations.
    TrustDeclaredCardinality,

    /// §4.4: push LIMIT across augmentation joins.
    LimitPushdownAj,

    // §5: augmentation self-join elimination, by increasing generality.
    /// Fig. 10(a): bare self-join on key.
    AsjBasic,
    /// Fig. 10(b): anchor is a subquery (re-wiring through operators).
    AsjSubquery,
    /// Fig. 10(c): filtered augmenter with predicate subsumption.
    AsjFilteredAugmenter,
    /// Fig. 13(a): anchor-side UNION ALL traversal.
    AsjThroughUnion,
    /// Fig. 13(b) *without* declared intent: shallow heuristic recognition
    /// of augmenter-side UNION ALL (recognizes only simple shapes — the
    /// partial recognition visible in Fig. 14(a)).
    AsjUnionHeuristic,
    /// §6.3: the CASE JOIN extension — declared ASJ intent over UNION ALL,
    /// enabling full recognition (Fig. 14(b)).
    CaseJoin,

    /// §7.1: interchange decimal rounding and addition inside aggregates
    /// marked `allow_precision_loss`.
    AllowPrecisionLoss,
    /// Eager (partial) aggregation below augmentation joins.
    EagerAggregation,

    /// Remove DISTINCT over provably duplicate-free input.
    RemoveRedundantDistinct,

    /// §7 outlook: cost-based reordering of commutable inner-join regions
    /// using cardinality estimates (and observed feedback when available).
    /// Only fires when the caller supplies table statistics.
    CostBasedJoinOrdering,
}

/// A named capability set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Profile {
    name: String,
    caps: BTreeSet<Capability>,
}

impl Profile {
    /// Empty profile (no rewrites at all).
    pub fn named(name: &str) -> Profile {
        Profile { name: name.to_string(), caps: BTreeSet::new() }
    }

    /// Profile name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Adds a capability (builder style).
    pub fn with(mut self, cap: Capability) -> Profile {
        self.caps.insert(cap);
        self
    }

    /// Removes a capability (builder style) — for ablations.
    pub fn without(mut self, cap: Capability) -> Profile {
        self.caps.remove(&cap);
        self
    }

    /// Membership test.
    pub fn has(&self, cap: Capability) -> bool {
        self.caps.contains(&cap)
    }

    /// True when any ASJ-family capability is present.
    pub fn any_asj(&self) -> bool {
        use Capability::*;
        [AsjBasic, AsjSubquery, AsjFilteredAugmenter, AsjThroughUnion, AsjUnionHeuristic, CaseJoin]
            .iter()
            .any(|c| self.has(*c))
    }

    /// The [`DeriveOptions`] implied by this profile's derivation flags.
    pub fn derive_options(&self) -> DeriveOptions {
        DeriveOptions {
            from_primary_key: self.has(Capability::UniqueFromPrimaryKey),
            from_group_by: self.has(Capability::UniqueFromGroupBy),
            from_const_filter: self.has(Capability::UniqueFromConstFilter),
            through_join: self.has(Capability::UniqueThroughJoin),
            through_sort_limit: self.has(Capability::UniqueThroughSortLimit),
            union_disjoint: self.has(Capability::UnionUniqueDisjoint),
            union_branch_id: self.has(Capability::UnionUniqueBranchId),
            trust_declared: self.has(Capability::TrustDeclaredCardinality),
        }
    }

    fn base(name: &str) -> Profile {
        Profile::named(name)
            .with(Capability::ConstantFolding)
            .with(Capability::FilterPushdown)
            .with(Capability::ProjectionPruning)
    }

    /// SAP HANA: everything (Tables 1–4 all "Y").
    pub fn hana() -> Profile {
        use Capability::*;
        let mut p = Profile::base("hana");
        for c in [
            UajElimination,
            UniqueFromPrimaryKey,
            UniqueFromGroupBy,
            UniqueFromConstFilter,
            UniqueThroughJoin,
            UniqueThroughSortLimit,
            UnionUniqueDisjoint,
            UnionUniqueBranchId,
            TrustDeclaredCardinality,
            LimitPushdownAj,
            AsjBasic,
            AsjSubquery,
            AsjFilteredAugmenter,
            AsjThroughUnion,
            AsjUnionHeuristic,
            CaseJoin,
            AllowPrecisionLoss,
            EagerAggregation,
            RemoveRedundantDistinct,
            CostBasedJoinOrdering,
        ] {
            p = p.with(c);
        }
        p
    }

    /// PostgreSQL 17: UAJ with PK/GROUP BY/const-filter derivations, but no
    /// derivation through joins or sort+limit, no limit pushdown across AJ,
    /// no ASJ, no UNION ALL uniqueness (Table 1 row: Y Y Y − Y − −).
    pub fn postgres() -> Profile {
        use Capability::*;
        Profile::base("postgres")
            .with(UajElimination)
            .with(UniqueFromPrimaryKey)
            .with(UniqueFromGroupBy)
            .with(UniqueFromConstFilter)
    }

    /// Commercial System X: none of the studied optimizations.
    pub fn system_x() -> Profile {
        Profile::base("system_x")
    }

    /// Commercial System Y: UAJ from primary keys and constant filters
    /// only (Table 1 row: Y − Y − − − −).
    pub fn system_y() -> Profile {
        use Capability::*;
        Profile::base("system_y")
            .with(UajElimination)
            .with(UniqueFromPrimaryKey)
            .with(UniqueFromConstFilter)
    }

    /// Commercial System Z: full UAJ derivation except through sort+limit
    /// (Table 1 row: Y Y Y Y Y Y −); nothing from Tables 2–4.
    pub fn system_z() -> Profile {
        use Capability::*;
        Profile::base("system_z")
            .with(UajElimination)
            .with(UniqueFromPrimaryKey)
            .with(UniqueFromGroupBy)
            .with(UniqueFromConstFilter)
            .with(UniqueThroughJoin)
    }

    /// The five evaluated systems in paper order.
    pub fn paper_systems() -> Vec<Profile> {
        vec![
            Profile::hana(),
            Profile::postgres(),
            Profile::system_x(),
            Profile::system_y(),
            Profile::system_z(),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_paper_capability_claims() {
        let hana = Profile::hana();
        assert!(hana.has(Capability::CaseJoin));
        assert!(hana.has(Capability::LimitPushdownAj));
        assert!(hana.any_asj());

        let pg = Profile::postgres();
        assert!(pg.has(Capability::UajElimination));
        assert!(pg.has(Capability::UniqueFromGroupBy));
        assert!(!pg.has(Capability::UniqueThroughJoin));
        assert!(!pg.has(Capability::LimitPushdownAj));
        assert!(!pg.any_asj());

        let x = Profile::system_x();
        assert!(!x.has(Capability::UajElimination));

        let y = Profile::system_y();
        assert!(y.has(Capability::UniqueFromPrimaryKey));
        assert!(!y.has(Capability::UniqueFromGroupBy));

        let z = Profile::system_z();
        assert!(z.has(Capability::UniqueThroughJoin));
        assert!(!z.has(Capability::UniqueThroughSortLimit));
    }

    #[test]
    fn derive_options_reflect_flags() {
        let opts = Profile::postgres().derive_options();
        assert!(opts.from_primary_key && opts.from_group_by && opts.from_const_filter);
        assert!(!opts.through_join && !opts.through_sort_limit);
        assert!(!opts.union_disjoint && !opts.union_branch_id && !opts.trust_declared);
    }

    #[test]
    fn with_without_roundtrip() {
        let p = Profile::hana().without(Capability::CaseJoin);
        assert!(!p.has(Capability::CaseJoin));
        assert!(p.has(Capability::AsjUnionHeuristic));
        let p = p.with(Capability::CaseJoin);
        assert!(p.has(Capability::CaseJoin));
    }

    #[test]
    fn paper_systems_order() {
        let names: Vec<String> =
            Profile::paper_systems().iter().map(|p| p.name().to_string()).collect();
        assert_eq!(names, ["hana", "postgres", "system_x", "system_y", "system_z"]);
    }
}
