//! §7.1: aggregation pushdown across decimal rounding
//! (`allow_precision_loss`), plus eager aggregation below augmentation
//! joins.
//!
//! Decimal rounding does not commute with addition
//! (`round(1.3)+round(2.4) = 3` but `round(1.3+2.4) = 4`), so
//! `sum(round(x*k, s))` cannot normally become `round(sum(x)*k, s)`.
//! When the user opts in via `allow_precision_loss(...)`, the interchange
//! becomes legal: the per-row multiply-and-round work collapses into a
//! single post-aggregation expression, and the bare `sum(x)` becomes
//! eligible for further pushdown.

use crate::ctx::RewriteCtx;
use vdm_expr::{AggExpr, AggFunc, BinOp, Expr, ScalarFunc};
use vdm_plan::{transform_up, JoinKind, LogicalPlan, PlanRef};
use vdm_types::Result;

/// Rewrites `allow_precision_loss(sum(round(...)))` aggregates.
pub fn precision_pass(plan: &PlanRef) -> Result<PlanRef> {
    transform_up(plan, &mut |node| precision_node(node))
}

fn precision_node(node: PlanRef) -> Result<PlanRef> {
    if let LogicalPlan::Aggregate { input, group_by, aggs, .. } = node.as_ref() {
        let mut changed = false;
        let mut new_aggs: Vec<(AggExpr, String)> = Vec::with_capacity(aggs.len());
        // Post-projection over [groups..., aggs...]: default passthrough.
        let ng = group_by.len();
        let mut post: Vec<Expr> = (0..ng + aggs.len()).map(Expr::col).collect();
        for (j, (agg, name)) in aggs.iter().enumerate() {
            match rewrite_agg(agg) {
                Some((inner_agg, wrap)) => {
                    changed = true;
                    new_aggs.push((inner_agg, name.clone()));
                    // wrap references Col(0) = the aggregate result slot.
                    post[ng + j] = wrap.remap_columns(&|_| ng + j);
                }
                None => new_aggs.push((agg.clone(), name.clone())),
            }
        }
        if changed {
            let agg_plan = LogicalPlan::aggregate(input.clone(), group_by.clone(), new_aggs)?;
            let schema = node.schema();
            let exprs = post
                .into_iter()
                .enumerate()
                .map(|(i, e)| (e, schema.field(i).name.clone()))
                .collect();
            let out = LogicalPlan::project(agg_plan, exprs)?;
            vdm_obs::rewrite::fired(
                "precision-interchange",
                &node,
                Some(&out),
                "§7.1: ALLOW_PRECISION_LOSS lets sum(round(x*k, s)) become round(sum(x)*k, s)",
            );
            return Ok(out);
        }
    }
    Ok(node)
}

/// `sum(round(X, s))` → (`sum(X)`, `round($0, s)`), and
/// `sum(round(X * K, s))` → (`sum(X)`, `round($0 * K, s)`) for constant
/// `K`. Only fires when the aggregate carries `allow_precision_loss`.
fn rewrite_agg(agg: &AggExpr) -> Option<(AggExpr, Expr)> {
    if !agg.allow_precision_loss || agg.func != AggFunc::Sum || agg.distinct {
        return None;
    }
    let arg = agg.arg.as_ref()?;
    let (inner, scale) = match arg {
        Expr::Func { func: ScalarFunc::Round, args } if args.len() == 2 => {
            (&args[0], args[1].clone())
        }
        _ => return None,
    };
    if !scale.is_constant() {
        return None;
    }
    // Split a constant factor out of the rounded expression.
    let (sum_arg, factor): (Expr, Option<Expr>) = match inner {
        Expr::Binary { op: BinOp::Mul, left, right } => {
            if right.is_constant() {
                ((**left).clone(), Some((**right).clone()))
            } else if left.is_constant() {
                ((**right).clone(), Some((**left).clone()))
            } else {
                (inner.clone(), None)
            }
        }
        _ => (inner.clone(), None),
    };
    let mut new_agg = AggExpr::new(AggFunc::Sum, sum_arg);
    new_agg.allow_precision_loss = true;
    // Wrapper over the aggregate slot (Col(0) placeholder).
    let slot = Expr::col(0);
    let scaled = match factor {
        Some(k) => slot.binary(BinOp::Mul, k),
        None => slot,
    };
    let wrap = Expr::Func { func: ScalarFunc::Round, args: vec![scaled, scale] };
    Some((new_agg, wrap))
}

/// Eager aggregation: `Aggregate(G, A) over AJ-Join(L, R)` where every
/// aggregate argument references only `L` → pre-aggregate `L` by
/// (join keys ∪ G∩L), join, and re-aggregate.
///
/// Sound for augmentation joins because the join neither filters nor
/// duplicates left rows; `SUM`/`MIN`/`MAX` re-combine, `COUNT(*)` becomes a
/// `SUM` of partial counts.
pub fn eager_agg_pass(plan: &PlanRef, ctx: &RewriteCtx<'_>) -> Result<PlanRef> {
    transform_up(plan, &mut |node| {
        if let LogicalPlan::Aggregate { input, group_by, aggs, .. } = node.as_ref() {
            if let Some(new_plan) = try_eager(input, group_by, aggs, ctx)? {
                vdm_obs::rewrite::fired(
                    "eager-aggregation",
                    &node,
                    Some(&new_plan),
                    "aggregate pushed below an augmentation join (right side at most one match)",
                );
                return Ok(new_plan);
            }
        }
        Ok(node)
    })
}

fn try_eager(
    join: &PlanRef,
    group_by: &[(Expr, String)],
    aggs: &[(AggExpr, String)],
    ctx: &RewriteCtx<'_>,
) -> Result<Option<PlanRef>> {
    let LogicalPlan::Join { left, right, kind, on, filter, declared, asj_intent, .. } =
        join.as_ref()
    else {
        return Ok(None);
    };
    if *kind != JoinKind::LeftOuter || filter.is_some() || on.is_empty() {
        return Ok(None);
    }
    // Already pre-aggregated (our own output): don't fire again.
    if matches!(left.as_ref(), LogicalPlan::Aggregate { .. }) {
        return Ok(None);
    }
    if !ctx.right_at_most_one(right, on, *declared) {
        return Ok(None);
    }
    let nl = left.schema().len();
    // Aggregate args must be left-only; group keys may touch either side
    // but left-side group refs must be plain columns (they become part of
    // the pre-aggregation key).
    let mut supported = !aggs.is_empty();
    for (a, _) in aggs {
        if !matches!(a.func, AggFunc::Sum | AggFunc::Min | AggFunc::Max | AggFunc::CountStar)
            || a.distinct
        {
            supported = false;
            break;
        }
        let mut refs = std::collections::BTreeSet::new();
        a.referenced_columns(&mut refs);
        if refs.iter().any(|&c| c >= nl) {
            supported = false;
            break;
        }
    }
    if !supported {
        return Ok(None);
    }
    let mut group_left_cols = std::collections::BTreeSet::new();
    for (g, _) in group_by {
        let mut refs = std::collections::BTreeSet::new();
        g.referenced_columns(&mut refs);
        for c in refs {
            if c < nl {
                if !matches!(g, Expr::Col(_)) {
                    return Ok(None);
                }
                group_left_cols.insert(c);
            }
        }
    }
    // Require at least one right-side group ref; otherwise plain UAJ
    // pruning is the better rewrite and this one would just add operators.
    let any_right_group = group_by.iter().any(|(g, _)| {
        let mut refs = std::collections::BTreeSet::new();
        g.referenced_columns(&mut refs);
        refs.iter().any(|&c| c >= nl)
    });
    if !any_right_group {
        return Ok(None);
    }
    // Pre-aggregation key: join keys ∪ left group columns.
    let mut key_cols: Vec<usize> = on.iter().map(|&(l, _)| l).collect();
    for &c in &group_left_cols {
        if !key_cols.contains(&c) {
            key_cols.push(c);
        }
    }
    let left_schema = left.schema();
    let pre_groups: Vec<(Expr, String)> =
        key_cols.iter().map(|&c| (Expr::col(c), left_schema.field(c).name.clone())).collect();
    let pre_aggs: Vec<(AggExpr, String)> = aggs
        .iter()
        .enumerate()
        .map(|(j, (a, _))| {
            let pre = match a.func {
                AggFunc::CountStar => AggExpr::count_star(),
                _ => a.clone(),
            };
            (pre, format!("__pre_{j}"))
        })
        .collect();
    let n_pre_aggs = pre_aggs.len();
    let pre = LogicalPlan::aggregate(left.clone(), pre_groups, pre_aggs)?;
    // New join: pre-aggregated left (layout: key_cols..., partials...).
    let new_on: Vec<(usize, usize)> = on
        .iter()
        .map(|&(l, r)| {
            let pos = key_cols.iter().position(|&c| c == l).expect("join key in key_cols");
            (pos, r)
        })
        .collect();
    let new_join =
        LogicalPlan::join(pre, right.clone(), *kind, new_on, None, *declared, *asj_intent)?;
    // Final aggregation: same groups (remapped), re-combined aggregates.
    let remap_col = |c: usize| -> usize {
        if c < nl {
            key_cols.iter().position(|&k| k == c).expect("left group col in key")
        } else {
            // Right columns now follow key_cols + partial aggs.
            key_cols.len() + n_pre_aggs + (c - nl)
        }
    };
    let final_groups: Vec<(Expr, String)> =
        group_by.iter().map(|(g, n)| (g.remap_columns(&remap_col), n.clone())).collect();
    let final_aggs: Vec<(AggExpr, String)> = aggs
        .iter()
        .enumerate()
        .map(|(j, (a, n))| {
            let slot = key_cols.len() + j;
            let func = match a.func {
                AggFunc::CountStar => AggFunc::Sum,
                f => f,
            };
            let mut fa = AggExpr::new(func, Expr::col(slot));
            fa.allow_precision_loss = a.allow_precision_loss;
            (fa, n.clone())
        })
        .collect();
    Ok(Some(LogicalPlan::aggregate(new_join, final_groups, final_aggs)?))
}
