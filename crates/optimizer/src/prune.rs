//! Projection pruning + unused-augmentation-join elimination (§4.2–4.3).
//!
//! One top-down pass: the set of *required* output columns flows from the
//! root toward the leaves. At every join, if the parent requires nothing
//! from the right child and the join is provably **purely augmentative**
//! (it neither filters nor duplicates left rows), the join disappears:
//!
//! * **AJ 2** — left-outer equi-join whose right side matches at most one
//!   row (right join columns cover a unique set — AJ 2a — or the right side
//!   is statically empty — AJ 2b);
//! * **AJ 1** — inner equi-join guaranteed *exactly one* match: declared
//!   `MANY TO EXACT ONE` (§7.3) or witnessed by a foreign key over
//!   non-nullable columns (AJ 1a).
//!
//! Everything else in the pass is plain column pruning, which is itself
//! what makes the analysis compositional: pruning a join's unused output
//! exposes the next UAJ above it.
//!
//! Because the pass is top-down over required-column sets it cannot ride
//! the bottom-up [`vdm_plan::transform_up`] driver; instead it memoizes
//! `(node pointer, required set)` pairs, so a shared subtree reached from
//! two parents with the same requirements is pruned once and the result
//! `Arc` is shared — and a subtree the pass leaves unchanged keeps its
//! original `Arc` identity.

use crate::ctx::RewriteCtx;
use crate::profile::Capability;
use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;
use vdm_catalog::TableDef;
use vdm_expr::Expr;
use vdm_plan::{DeclaredCardinality, JoinKind, LogicalPlan, PlanRef};
use vdm_types::{Result, VdmError};

/// Old-ordinal → new-ordinal mapping produced by pruning a subtree.
type ColMap = Vec<Option<usize>>;

/// `(node pointer, required set)` → pruned result, per pass invocation.
type PruneMemo = HashMap<(usize, Vec<usize>), (PlanRef, ColMap)>;

/// Runs the pruning/UAJ pass over a whole plan.
pub fn prune_pass(plan: &PlanRef, ctx: &RewriteCtx<'_>) -> Result<PlanRef> {
    let all: BTreeSet<usize> = (0..plan.schema().len()).collect();
    let original = plan.schema();
    let mut memo = PruneMemo::new();
    let (pruned, map) = prune(plan, &all, ctx, &mut memo)?;
    // Root required everything, so the mapping must be total; restore the
    // original column order/names with a projection if anything moved.
    let identity = map.iter().enumerate().all(|(i, m)| *m == Some(i))
        && pruned.schema().len() == original.len();
    if identity {
        return Ok(pruned);
    }
    let exprs = map
        .iter()
        .enumerate()
        .map(|(i, m)| {
            let new = m.ok_or_else(|| {
                VdmError::Optimize(format!("root column {i} lost during pruning"))
            })?;
            Ok((Expr::col(new), original.field(i).name.clone()))
        })
        .collect::<Result<Vec<_>>>()?;
    LogicalPlan::project(pruned, exprs)
}

fn prune(
    plan: &PlanRef,
    required: &BTreeSet<usize>,
    ctx: &RewriteCtx<'_>,
    memo: &mut PruneMemo,
) -> Result<(PlanRef, ColMap)> {
    // Zero-column relations are not representable; always keep one column.
    let mut required = required.clone();
    if required.is_empty() && !plan.schema().is_empty() {
        required.insert(0);
    }
    let key = (Arc::as_ptr(plan) as usize, required.iter().copied().collect::<Vec<usize>>());
    if let Some((done, map)) = memo.get(&key) {
        return Ok((done.clone(), map.clone()));
    }
    let (out, map) = prune_node(plan, &required, ctx, memo)?;
    // Identity preservation: a rebuild that changed nothing hands back the
    // original `Arc`, keeping DAG sharing (and property-cache entries) alive.
    let out = if !Arc::ptr_eq(&out, plan)
        && map.iter().enumerate().all(|(i, m)| *m == Some(i))
        && out.schema().len() == plan.schema().len()
        && shallow_identical(&out, plan)
    {
        plan.clone()
    } else {
        out
    };
    memo.insert(key, (out.clone(), map.clone()));
    Ok((out, map))
}

/// True when `a` rebuilds `b` exactly: pointer-equal children and equal
/// node-local content. (Cheap — never walks subtrees.)
fn shallow_identical(a: &PlanRef, b: &PlanRef) -> bool {
    let (ca, cb) = (a.children(), b.children());
    if ca.len() != cb.len() || !ca.iter().zip(&cb).all(|(x, y)| Arc::ptr_eq(x, y)) {
        return false;
    }
    match (a.as_ref(), b.as_ref()) {
        (LogicalPlan::Project { exprs: ea, .. }, LogicalPlan::Project { exprs: eb, .. }) => {
            ea == eb
        }
        (LogicalPlan::Filter { predicate: pa, .. }, LogicalPlan::Filter { predicate: pb, .. }) => {
            pa == pb
        }
        (
            LogicalPlan::Join {
                kind: ka, on: oa, filter: fa, declared: da, asj_intent: ia, ..
            },
            LogicalPlan::Join {
                kind: kb, on: ob, filter: fb, declared: db, asj_intent: ib, ..
            },
        ) => ka == kb && oa == ob && fa == fb && da == db && ia == ib,
        (LogicalPlan::UnionAll { .. }, LogicalPlan::UnionAll { .. })
        | (LogicalPlan::Distinct { .. }, LogicalPlan::Distinct { .. }) => true,
        (
            LogicalPlan::Aggregate { group_by: ga, aggs: aa, .. },
            LogicalPlan::Aggregate { group_by: gb, aggs: ab, .. },
        ) => ga == gb && aa == ab,
        (LogicalPlan::Sort { keys: ka, .. }, LogicalPlan::Sort { keys: kb, .. }) => ka == kb,
        (
            LogicalPlan::Limit { skip: sa, fetch: fa, .. },
            LogicalPlan::Limit { skip: sb, fetch: fb, .. },
        ) => sa == sb && fa == fb,
        _ => false,
    }
}

fn prune_node(
    plan: &PlanRef,
    required: &BTreeSet<usize>,
    ctx: &RewriteCtx<'_>,
    memo: &mut PruneMemo,
) -> Result<(PlanRef, ColMap)> {
    let width = plan.schema().len();
    match plan.as_ref() {
        LogicalPlan::Scan { .. } | LogicalPlan::Values { .. } => {
            Ok((plan.clone(), identity_map(width)))
        }
        LogicalPlan::Project { input, exprs, .. } => {
            let kept: Vec<usize> = required.iter().copied().collect();
            let mut child_req = BTreeSet::new();
            for &i in &kept {
                exprs[i].0.referenced_columns(&mut child_req);
            }
            let (new_input, cmap) = prune(input, &child_req, ctx, memo)?;
            // Nothing pruned anywhere: skip the rebuild (and its schema
            // re-derivation) — this is the common case on converged plans.
            if kept.len() == width && Arc::ptr_eq(&new_input, input) && is_identity(&cmap) {
                return Ok((plan.clone(), identity_map(width)));
            }
            let new_exprs = kept
                .iter()
                .map(|&i| {
                    let (e, n) = &exprs[i];
                    (remap(e, &cmap), n.clone())
                })
                .collect();
            let new_plan = LogicalPlan::project(new_input, new_exprs)?;
            Ok((new_plan, positions_map(width, &kept)))
        }
        LogicalPlan::Filter { input, predicate } => {
            let mut child_req = required.clone();
            predicate.referenced_columns(&mut child_req);
            let (new_input, cmap) = prune(input, &child_req, ctx, memo)?;
            if Arc::ptr_eq(&new_input, input) && is_identity(&cmap) {
                return Ok((plan.clone(), cmap));
            }
            let new_plan = LogicalPlan::filter(new_input, remap(predicate, &cmap))?;
            Ok((new_plan, cmap))
        }
        LogicalPlan::Join { left, right, kind, on, filter, declared, asj_intent, .. } => {
            prune_join(
                plan,
                left,
                right,
                *kind,
                on,
                filter,
                *declared,
                *asj_intent,
                required,
                ctx,
                memo,
            )
        }
        LogicalPlan::UnionAll { inputs, .. } => {
            let kept: Vec<usize> = required.iter().copied().collect();
            let mut new_children = Vec::with_capacity(inputs.len());
            for child in inputs {
                let (pruned_child, cmap) = prune(child, required, ctx, memo)?;
                // Normalize every child to the same [kept...] layout.
                let exprs = kept
                    .iter()
                    .map(|&i| {
                        let new = cmap[i].ok_or_else(|| {
                            VdmError::Optimize(format!("union child lost required column {i}"))
                        })?;
                        Ok((Expr::col(new), child.schema().field(i).name.clone()))
                    })
                    .collect::<Result<Vec<_>>>()?;
                // Skip the wrap when it would be an identity projection:
                // otherwise every fixpoint round stacks another projection
                // per branch and the digest never stabilizes.
                let cs = pruned_child.schema();
                let identity = cs.len() == exprs.len()
                    && exprs.iter().enumerate().all(|(j, (e, n))| {
                        matches!(e, Expr::Col(c) if *c == j)
                            && cs.field(j).name.eq_ignore_ascii_case(n)
                    });
                new_children.push(if identity && !ctx.legacy_normalize() {
                    pruned_child
                } else {
                    LogicalPlan::project(pruned_child, exprs)?
                });
            }
            if kept.len() == width
                && new_children.iter().zip(inputs).all(|(n, o)| Arc::ptr_eq(n, o))
            {
                return Ok((plan.clone(), identity_map(width)));
            }
            let new_plan = LogicalPlan::union_all(new_children)?;
            Ok((new_plan, positions_map(width, &kept)))
        }
        LogicalPlan::Aggregate { input, group_by, aggs, .. } => {
            let ng = group_by.len();
            // Group keys always stay (dropping one changes grouping).
            let kept_aggs: Vec<usize> =
                (0..aggs.len()).filter(|j| required.contains(&(ng + j))).collect();
            let mut child_req = BTreeSet::new();
            for (e, _) in group_by {
                e.referenced_columns(&mut child_req);
            }
            for &j in &kept_aggs {
                aggs[j].0.referenced_columns(&mut child_req);
            }
            let (new_input, cmap) = prune(input, &child_req, ctx, memo)?;
            let new_groups = group_by.iter().map(|(e, n)| (remap(e, &cmap), n.clone())).collect();
            let new_aggs = kept_aggs
                .iter()
                .map(|&j| {
                    let (a, n) = &aggs[j];
                    (a.remap_columns(&|i| cmap[i].expect("agg ref pruned")), n.clone())
                })
                .collect();
            let new_plan = LogicalPlan::aggregate(new_input, new_groups, new_aggs)?;
            let mut map: ColMap = vec![None; width];
            for (i, m) in map.iter_mut().enumerate().take(ng) {
                *m = Some(i);
            }
            for (new_j, &old_j) in kept_aggs.iter().enumerate() {
                map[ng + old_j] = Some(ng + new_j);
            }
            Ok((new_plan, map))
        }
        LogicalPlan::Distinct { input } => {
            // DISTINCT semantics depend on every column: no pruning below,
            // but still recurse to prune within (joins inside subtrees).
            let all: BTreeSet<usize> = (0..input.schema().len()).collect();
            let (new_input, cmap) = prune(input, &all, ctx, memo)?;
            debug_assert!(cmap.iter().enumerate().all(|(i, m)| *m == Some(i)));
            Ok((LogicalPlan::distinct(new_input), identity_map(width)))
        }
        LogicalPlan::Sort { input, keys } => {
            let mut child_req = required.clone();
            for k in keys {
                k.expr.referenced_columns(&mut child_req);
            }
            let (new_input, cmap) = prune(input, &child_req, ctx, memo)?;
            let new_keys = keys
                .iter()
                .map(|k| vdm_plan::SortKey {
                    expr: remap(&k.expr, &cmap),
                    asc: k.asc,
                    nulls_first: k.nulls_first,
                })
                .collect();
            let new_plan = LogicalPlan::sort(new_input, new_keys)?;
            Ok((new_plan, cmap))
        }
        LogicalPlan::Limit { input, skip, fetch } => {
            let (new_input, cmap) = prune(input, required, ctx, memo)?;
            Ok((LogicalPlan::limit(new_input, *skip, *fetch), cmap))
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn prune_join(
    plan: &PlanRef,
    left: &PlanRef,
    right: &PlanRef,
    kind: JoinKind,
    on: &[(usize, usize)],
    filter: &Option<Expr>,
    declared: Option<DeclaredCardinality>,
    asj_intent: bool,
    required: &BTreeSet<usize>,
    ctx: &RewriteCtx<'_>,
    memo: &mut PruneMemo,
) -> Result<(PlanRef, ColMap)> {
    let width = plan.schema().len();
    let nl = left.schema().len();
    let req_left: BTreeSet<usize> = required.iter().copied().filter(|&i| i < nl).collect();
    let req_right: BTreeSet<usize> =
        required.iter().copied().filter(|&i| i >= nl).map(|i| i - nl).collect();

    // ---- UAJ elimination ----------------------------------------------
    if ctx.has(Capability::UajElimination) && req_right.is_empty() {
        let evidence = match kind {
            JoinKind::LeftOuter => {
                // AJ 2a: right matches at most one row; AJ 2b: right empty.
                if ctx.right_at_most_one(right, on, declared) {
                    Some(match declared {
                        Some(d) => format!("AJ 2a: unused LEFT OUTER augmenter, at most one match (declared {d:?})"),
                        None => "AJ 2a: unused LEFT OUTER augmenter, join columns cover a derived unique set".to_string(),
                    })
                } else if ctx.statically_empty(right) {
                    Some("AJ 2b: unused LEFT OUTER augmenter is statically empty".to_string())
                } else {
                    None
                }
            }
            JoinKind::Inner => {
                // AJ 1: exactly-one lower bound needed.
                if inner_exactly_one(left, right, on, declared, ctx) {
                    Some(match declared {
                        Some(d) => format!("AJ 1a: unused INNER augmenter, exactly one match (declared {d:?})"),
                        None => "AJ 1a: unused INNER augmenter, exactly one match (FK witness + unique key)".to_string(),
                    })
                } else {
                    None
                }
            }
        };
        if let Some(evidence) = evidence {
            let (new_left, lmap) = prune(left, &req_left, ctx, memo)?;
            vdm_obs::rewrite::fired("uaj-removal", plan, Some(&new_left), &evidence);
            let mut map: ColMap = vec![None; width];
            for &i in &req_left {
                map[i] = lmap[i];
            }
            // Corner case: the parent required only right columns (all now
            // gone) and the zero-column guard put col 0 of the join, which
            // is a left column — covered by req_left handling above.
            if req_left.is_empty() {
                map[0] = lmap[0];
            }
            return Ok((new_left, map));
        }
    }

    // ---- Regular pruning ------------------------------------------------
    let mut left_req = req_left.clone();
    let mut right_req = req_right.clone();
    for &(l, r) in on {
        left_req.insert(l);
        right_req.insert(r);
    }
    if let Some(f) = filter {
        let mut refs = BTreeSet::new();
        f.referenced_columns(&mut refs);
        for i in refs {
            if i < nl {
                left_req.insert(i);
            } else {
                right_req.insert(i - nl);
            }
        }
    }
    let (new_left, lmap) = prune(left, &left_req, ctx, memo)?;
    let (new_right, rmap) = prune(right, &right_req, ctx, memo)?;
    if Arc::ptr_eq(&new_left, left)
        && Arc::ptr_eq(&new_right, right)
        && is_identity(&lmap)
        && is_identity(&rmap)
    {
        return Ok((plan.clone(), identity_map(width)));
    }
    let new_nl = new_left.schema().len();
    let new_on: Vec<(usize, usize)> = on
        .iter()
        .map(|&(l, r)| {
            Ok((
                lmap[l].ok_or_else(|| VdmError::Optimize("join key pruned (left)".into()))?,
                rmap[r].ok_or_else(|| VdmError::Optimize("join key pruned (right)".into()))?,
            ))
        })
        .collect::<Result<_>>()?;
    let new_filter = filter.as_ref().map(|f| {
        f.remap_columns(&|i| {
            if i < nl {
                lmap[i].expect("filter ref kept (left)")
            } else {
                new_nl + rmap[i - nl].expect("filter ref kept (right)")
            }
        })
    });
    let new_plan =
        LogicalPlan::join(new_left, new_right, kind, new_on, new_filter, declared, asj_intent)?;
    let mut map: ColMap = vec![None; width];
    map[..nl].copy_from_slice(&lmap[..nl]);
    for i in 0..(width - nl) {
        map[nl + i] = rmap[i].map(|p| new_nl + p);
    }
    Ok((new_plan, map))
}

/// Statically-empty relation detection (AJ 2b: `R ⟕ ∅`) — thin wrapper
/// over [`vdm_plan::statically_empty`], kept for callers outside the
/// rewrite context (tests, diagnostics).
pub fn statically_empty(plan: &PlanRef) -> bool {
    vdm_plan::statically_empty(plan)
}

/// Traces an output ordinal down a pure-column chain to its originating
/// scan. Returns `(table, instance, scan ordinal, filtered, nulled)` —
/// thin adapter over [`vdm_plan::lineage`].
pub fn trace_to_scan(
    plan: &PlanRef,
    ord: usize,
) -> Option<(Arc<TableDef>, usize, usize, bool, bool)> {
    let o = vdm_plan::lineage::trace_column(plan, ord)?;
    Some((o.table, o.instance, o.column, o.filtered, o.nulled))
}

/// AJ 1 witness: an inner equi-join with a guaranteed *exactly one* match —
/// declared `MANY TO EXACT ONE`, or a foreign key over non-nullable columns
/// referencing an unfiltered scan of the target table (AJ 1a).
fn inner_exactly_one(
    left: &PlanRef,
    right: &PlanRef,
    on: &[(usize, usize)],
    declared: Option<DeclaredCardinality>,
    ctx: &RewriteCtx<'_>,
) -> bool {
    if ctx.has(Capability::TrustDeclaredCardinality)
        && declared == Some(DeclaredCardinality::ManyToExactOne)
    {
        return true;
    }
    if !ctx.has(Capability::UniqueFromPrimaryKey) || on.is_empty() {
        return false;
    }
    // Trace all left keys to one scan, un-nulled and non-nullable.
    let mut left_scan: Option<(Arc<TableDef>, usize)> = None;
    let mut left_ords = Vec::with_capacity(on.len());
    for &(l, _) in on {
        let o = match ctx.origin(left, l) {
            Some(o) => o,
            None => return false,
        };
        if o.nulled || o.table.schema.field(o.column).nullable {
            return false;
        }
        match &left_scan {
            None => left_scan = Some((Arc::clone(&o.table), o.instance)),
            Some((_, prev)) if *prev == o.instance => {}
            _ => return false,
        }
        left_ords.push(o.column);
    }
    let (left_table, _) = left_scan.expect("on is non-empty");
    // Trace all right keys to one *unfiltered* scan.
    let mut right_scan: Option<(Arc<TableDef>, usize)> = None;
    let mut right_ords = Vec::with_capacity(on.len());
    for &(_, r) in on {
        let o = match ctx.origin(right, r) {
            Some(o) => o,
            None => return false,
        };
        if o.filtered || o.nulled {
            return false;
        }
        match &right_scan {
            None => right_scan = Some((Arc::clone(&o.table), o.instance)),
            Some((_, prev)) if *prev == o.instance => {}
            _ => return false,
        }
        right_ords.push(o.column);
    }
    let (right_table, _) = right_scan.expect("on is non-empty");
    // The right side must contain nothing but that scan (no extra joins
    // that might duplicate; pure projections are fine).
    if !pure_chain_to_scan(right) {
        return false;
    }
    // Right keys must be unique, and a foreign key must align.
    if !right_table.cols_unique(&right_ords) {
        return false;
    }
    left_table.foreign_keys.iter().any(|fk| {
        if !fk.ref_table.eq_ignore_ascii_case(&right_table.name) {
            return false;
        }
        if fk.columns.len() != on.len() {
            return false;
        }
        let resolved: Option<Vec<usize>> =
            fk.ref_columns.iter().map(|n| right_table.schema.index_of(n)).collect();
        match resolved {
            Some(ref_ords) => {
                // Pairwise alignment: fk.columns[i] ↔ ref_ords[i] must match
                // the traced join pairs in some order.
                on.len() == fk.columns.len()
                    && left_ords.iter().zip(&right_ords).all(|(lc, rc)| {
                        fk.columns.iter().zip(&ref_ords).any(|(fc, rf)| fc == lc && rf == rc)
                    })
            }
            None => false,
        }
    })
}

/// True when the plan is just projections/sorts/limits over a single scan.
fn pure_chain_to_scan(plan: &PlanRef) -> bool {
    match plan.as_ref() {
        LogicalPlan::Scan { .. } => true,
        LogicalPlan::Project { input, exprs, .. } => {
            exprs.iter().all(|(e, _)| matches!(e, Expr::Col(_))) && pure_chain_to_scan(input)
        }
        _ => false,
    }
}

fn identity_map(width: usize) -> ColMap {
    (0..width).map(Some).collect()
}

fn is_identity(map: &ColMap) -> bool {
    map.iter().enumerate().all(|(i, m)| *m == Some(i))
}

fn positions_map(width: usize, kept: &[usize]) -> ColMap {
    let mut map = vec![None; width];
    for (new, &old) in kept.iter().enumerate() {
        map[old] = Some(new);
    }
    map
}

fn remap(e: &Expr, map: &ColMap) -> Expr {
    e.remap_columns(&|i| map[i].expect("referenced column was kept"))
}
