//! Optimizer tests: the paper's queries as plan builders, checked for plan
//! shape per profile (Tables 1–4) and for result equivalence on data.

use crate::{Capability, Optimizer, Profile};
use std::sync::Arc;
use vdm_catalog::{TableBuilder, TableDef};
use vdm_expr::{AggExpr, AggFunc, BinOp, Expr};
use vdm_plan::{plan_stats, JoinKind, LogicalPlan, PlanRef, SortKey};
use vdm_storage::StorageEngine;
use vdm_types::{SqlType, Value};

// ---------------------------------------------------------------- schema

fn orders() -> Arc<TableDef> {
    Arc::new(
        TableBuilder::new("orders")
            .column("o_orderkey", SqlType::Int, false)
            .column("o_custkey", SqlType::Int, false)
            .column("o_totalprice", SqlType::Decimal { scale: 2 }, false)
            .primary_key(&["o_orderkey"])
            .foreign_key(&["o_custkey"], "customer", &["c_custkey"])
            .build()
            .unwrap(),
    )
}

fn customer() -> Arc<TableDef> {
    Arc::new(
        TableBuilder::new("customer")
            .column("c_custkey", SqlType::Int, false)
            .column("c_name", SqlType::Text, false)
            .column("c_nationkey", SqlType::Int, false)
            .column("c_acctbal", SqlType::Decimal { scale: 2 }, false)
            .primary_key(&["c_custkey"])
            .build()
            .unwrap(),
    )
}

fn nation() -> Arc<TableDef> {
    Arc::new(
        TableBuilder::new("nation")
            .column("n_nationkey", SqlType::Int, false)
            .column("n_name", SqlType::Text, false)
            .primary_key(&["n_nationkey"])
            .build()
            .unwrap(),
    )
}

fn lineitem() -> Arc<TableDef> {
    Arc::new(
        TableBuilder::new("lineitem")
            .column("l_orderkey", SqlType::Int, false)
            .column("l_linenumber", SqlType::Int, false)
            .column("l_partkey", SqlType::Int, false)
            .column("l_quantity", SqlType::Int, false)
            .primary_key(&["l_orderkey", "l_linenumber"])
            .build()
            .unwrap(),
    )
}

fn part() -> Arc<TableDef> {
    Arc::new(
        TableBuilder::new("part")
            .column("p_partkey", SqlType::Int, false)
            .column("p_name", SqlType::Text, false)
            .primary_key(&["p_partkey"])
            .build()
            .unwrap(),
    )
}

/// Populates a small, referentially consistent TPC-H subset.
fn engine() -> StorageEngine {
    let e = StorageEngine::new();
    for t in [orders(), customer(), nation(), lineitem(), part()] {
        e.create_table(t).unwrap();
    }
    let dec = |s: &str| Value::Dec(s.parse().unwrap());
    e.insert("nation", (0..5).map(|i| vec![Value::Int(i), Value::str(format!("N{i}"))]).collect())
        .unwrap();
    e.insert(
        "customer",
        (0..20)
            .map(|i| {
                vec![
                    Value::Int(i),
                    Value::str(format!("cust{i}")),
                    Value::Int(i % 5),
                    dec(&format!("{}.50", 100 + i)),
                ]
            })
            .collect(),
    )
    .unwrap();
    e.insert(
        "orders",
        (0..50)
            .map(|i| vec![Value::Int(i), Value::Int(i % 20), dec(&format!("{}.25", 10 * i))])
            .collect(),
    )
    .unwrap();
    e.insert(
        "part",
        (0..10).map(|i| vec![Value::Int(i), Value::str(format!("part{i}"))]).collect(),
    )
    .unwrap();
    let mut li = Vec::new();
    for o in 0..50 {
        for ln in 1..=(o % 3 + 1) {
            li.push(vec![Value::Int(o), Value::Int(ln), Value::Int(o % 10), Value::Int(ln * 7)]);
        }
    }
    e.insert("lineitem", li).unwrap();
    e
}

fn sorted_rows(b: &vdm_storage::Batch) -> Vec<Vec<Value>> {
    let mut rows = b.to_rows();
    rows.sort_by(|a, b| {
        for (x, y) in a.iter().zip(b.iter()) {
            let c = x.total_cmp(y);
            if c != std::cmp::Ordering::Equal {
                return c;
            }
        }
        std::cmp::Ordering::Equal
    });
    rows
}

/// Asserts an optimized plan produces the same rows as the original.
fn assert_equivalent(plan: &PlanRef, optimized: &PlanRef, e: &StorageEngine) {
    let a = vdm_exec::execute(plan, e).unwrap();
    let b = vdm_exec::execute(optimized, e).unwrap();
    assert_eq!(
        sorted_rows(&a),
        sorted_rows(&b),
        "optimized plan changed results!\noriginal:\n{}\noptimized:\n{}",
        vdm_plan::explain(plan),
        vdm_plan::explain(optimized)
    );
}

// ------------------------------------------------ Fig. 5: the UAJ queries

/// `select o_orderkey from orders LEFT JOIN <augmenter> ON o_<k> = <key>`.
fn uaj_query(augmenter: PlanRef, left_key: usize, right_key: usize) -> PlanRef {
    let join =
        LogicalPlan::left_join(LogicalPlan::scan(orders()), augmenter, vec![(left_key, right_key)])
            .unwrap();
    LogicalPlan::project(join, vec![(Expr::col(0), "o_orderkey".into())]).unwrap()
}

pub(crate) fn uaj1() -> PlanRef {
    uaj_query(LogicalPlan::scan(customer()), 1, 0)
}

pub(crate) fn uaj2() -> PlanRef {
    let agg = LogicalPlan::aggregate(
        LogicalPlan::scan(lineitem()),
        vec![(Expr::col(0), "l_orderkey".into())],
        vec![(AggExpr::count_star(), "cnt".into())],
    )
    .unwrap();
    uaj_query(agg, 0, 0)
}

pub(crate) fn uaj3() -> PlanRef {
    let filtered =
        LogicalPlan::filter(LogicalPlan::scan(lineitem()), Expr::col(1).eq(Expr::int(1))).unwrap();
    uaj_query(filtered, 0, 0)
}

pub(crate) fn uaj1a() -> PlanRef {
    // Augmenter: customer ⋈ nation (non-duplicating join added).
    let j = LogicalPlan::inner_join(
        LogicalPlan::scan(customer()),
        LogicalPlan::scan(nation()),
        vec![(2, 0)],
    )
    .unwrap();
    uaj_query(j, 1, 0)
}

pub(crate) fn uaj2a() -> PlanRef {
    // Augmenter: group-by over (lineitem ⋈ part).
    let j = LogicalPlan::inner_join(
        LogicalPlan::scan(lineitem()),
        LogicalPlan::scan(part()),
        vec![(2, 0)],
    )
    .unwrap();
    let agg = LogicalPlan::aggregate(
        j,
        vec![(Expr::col(0), "l_orderkey".into())],
        vec![(AggExpr::new(AggFunc::Sum, Expr::col(3)), "qty".into())],
    )
    .unwrap();
    uaj_query(agg, 0, 0)
}

pub(crate) fn uaj3a() -> PlanRef {
    // Augmenter: const filter over (lineitem ⋈ part).
    let j = LogicalPlan::inner_join(
        LogicalPlan::scan(lineitem()),
        LogicalPlan::scan(part()),
        vec![(2, 0)],
    )
    .unwrap();
    let f = LogicalPlan::filter(j, Expr::col(1).eq(Expr::int(1))).unwrap();
    uaj_query(f, 0, 0)
}

pub(crate) fn uaj1b() -> PlanRef {
    // Augmenter: ORDER BY + LIMIT over customer.
    let s = LogicalPlan::sort(LogicalPlan::scan(customer()), vec![SortKey::desc(3)]).unwrap();
    let l = LogicalPlan::limit(s, 0, Some(10));
    uaj_query(l, 1, 0)
}

fn join_free(optimizer: &Optimizer, plan: &PlanRef) -> bool {
    let opt = optimizer.optimize(plan).unwrap();
    plan_stats(&opt).joins == 0
}

type QueryBuilder = fn() -> PlanRef;

#[test]
fn table1_uaj_matrix_matches_paper() {
    let queries: Vec<(&str, QueryBuilder)> = vec![
        ("UAJ 1", uaj1),
        ("UAJ 2", uaj2),
        ("UAJ 3", uaj3),
        ("UAJ 1a", uaj1a),
        ("UAJ 2a", uaj2a),
        ("UAJ 3a", uaj3a),
        ("UAJ 1b", uaj1b),
    ];
    // Paper Table 1, rows in query order: HANA, Postgres, X, Y, Z.
    let expected = [
        [true, true, false, true, true],
        [true, true, false, false, true],
        [true, true, false, true, true],
        [true, false, false, false, true],
        [true, true, false, false, true],
        [true, false, false, false, true],
        [true, false, false, false, false],
    ];
    let systems = Profile::paper_systems();
    for (qi, (name, q)) in queries.iter().enumerate() {
        for (si, profile) in systems.iter().enumerate() {
            let got = join_free(&Optimizer::new(profile.clone()), &q());
            assert_eq!(
                got,
                expected[qi][si],
                "{name} under {}: expected {}, got {}",
                profile.name(),
                expected[qi][si],
                got
            );
        }
    }
}

#[test]
fn uaj_rewrites_preserve_results() {
    let e = engine();
    let hana = Optimizer::hana();
    for q in [uaj1(), uaj2(), uaj3(), uaj1a(), uaj2a(), uaj3a(), uaj1b()] {
        let opt = hana.optimize(&q).unwrap();
        assert_equivalent(&q, &opt, &e);
    }
}

#[test]
fn uaj_not_removed_when_augmenter_used() {
    // Selecting a customer column keeps the join.
    let join = LogicalPlan::left_join(
        LogicalPlan::scan(orders()),
        LogicalPlan::scan(customer()),
        vec![(1, 0)],
    )
    .unwrap();
    let q =
        LogicalPlan::project(join, vec![(Expr::col(0), "k".into()), (Expr::col(4), "name".into())])
            .unwrap();
    let opt = Optimizer::hana().optimize(&q).unwrap();
    assert_eq!(plan_stats(&opt).joins, 1);
}

#[test]
fn uaj_not_removed_when_right_side_not_unique() {
    // orders LEFT JOIN lineitem on o_orderkey = l_orderkey duplicates rows.
    let join = LogicalPlan::left_join(
        LogicalPlan::scan(orders()),
        LogicalPlan::scan(lineitem()),
        vec![(0, 0)],
    )
    .unwrap();
    let q = LogicalPlan::project(join, vec![(Expr::col(0), "k".into())]).unwrap();
    let opt = Optimizer::hana().optimize(&q).unwrap();
    assert_eq!(plan_stats(&opt).joins, 1, "non-unique augmenter must stay");
    let e = engine();
    assert_equivalent(&q, &opt, &e);
}

#[test]
fn aj2b_empty_augmenter_removed() {
    // Left-outer join against σ(false): many-to-zero (AJ 2b).
    let empty =
        LogicalPlan::filter(LogicalPlan::scan(lineitem()), Expr::int(1).eq(Expr::int(0))).unwrap();
    let join = LogicalPlan::left_join(LogicalPlan::scan(orders()), empty, vec![(0, 0)]).unwrap();
    let q = LogicalPlan::project(join, vec![(Expr::col(0), "k".into())]).unwrap();
    let opt = Optimizer::hana().optimize(&q).unwrap();
    assert_eq!(plan_stats(&opt).joins, 0);
    let e = engine();
    assert_equivalent(&q, &opt, &e);
}

#[test]
fn aj1a_inner_fk_join_removed() {
    // Inner join along the orders→customer FK: exactly-one witness.
    let join = LogicalPlan::inner_join(
        LogicalPlan::scan(orders()),
        LogicalPlan::scan(customer()),
        vec![(1, 0)],
    )
    .unwrap();
    let q = LogicalPlan::project(join, vec![(Expr::col(0), "k".into())]).unwrap();
    let opt = Optimizer::hana().optimize(&q).unwrap();
    assert_eq!(plan_stats(&opt).joins, 0);
    let e = engine();
    assert_equivalent(&q, &opt, &e);
}

#[test]
fn inner_join_without_fk_not_removed() {
    // Same join shape but no FK from lineitem to customer: unsafe.
    let join = LogicalPlan::inner_join(
        LogicalPlan::scan(lineitem()),
        LogicalPlan::scan(customer()),
        vec![(0, 0)],
    )
    .unwrap();
    let q = LogicalPlan::project(join, vec![(Expr::col(0), "k".into())]).unwrap();
    let opt = Optimizer::hana().optimize(&q).unwrap();
    assert_eq!(plan_stats(&opt).joins, 1);
}

#[test]
fn declared_cardinality_enables_uaj_without_constraints() {
    // §7.3: no key on the augmenter, but MANY TO ONE declared.
    let keyless = Arc::new(
        TableBuilder::new("curr")
            .column("code", SqlType::Int, false)
            .column("rate", SqlType::Decimal { scale: 4 }, false)
            .build()
            .unwrap(),
    );
    let join = LogicalPlan::join(
        LogicalPlan::scan(orders()),
        LogicalPlan::scan(keyless),
        JoinKind::LeftOuter,
        vec![(1, 0)],
        None,
        Some(vdm_plan::DeclaredCardinality::ManyToOne),
        false,
    )
    .unwrap();
    let q = LogicalPlan::project(join, vec![(Expr::col(0), "k".into())]).unwrap();
    assert!(join_free(&Optimizer::hana(), &q));
    // Without trust, it stays.
    let no_trust = Optimizer::new(Profile::hana().without(Capability::TrustDeclaredCardinality));
    assert!(!join_free(&no_trust, &q));
}

// ------------------------------------------------- Fig. 6: limit pushdown

fn paging_query() -> PlanRef {
    let join = LogicalPlan::left_join(
        LogicalPlan::scan(orders()),
        LogicalPlan::scan(customer()),
        vec![(1, 0)],
    )
    .unwrap();
    LogicalPlan::limit(join, 1, Some(10))
}

/// True when some Limit sits strictly below some Join.
fn limit_below_join(plan: &PlanRef) -> bool {
    fn walk(p: &PlanRef, under_join: bool) -> bool {
        if matches!(p.as_ref(), vdm_plan::LogicalPlan::Limit { .. }) && under_join {
            return true;
        }
        let is_join = matches!(p.as_ref(), vdm_plan::LogicalPlan::Join { .. });
        p.children().iter().any(|c| walk(c, under_join || is_join))
    }
    walk(plan, false)
}

#[test]
fn table2_limit_pushdown_only_hana() {
    for profile in Profile::paper_systems() {
        let opt = Optimizer::new(profile.clone()).optimize(&paging_query()).unwrap();
        let pushed = limit_below_join(&opt);
        assert_eq!(pushed, profile.name() == "hana", "profile {}", profile.name());
    }
}

#[test]
fn limit_pushdown_preserves_row_count() {
    let e = engine();
    let q = paging_query();
    let opt = Optimizer::hana().optimize(&q).unwrap();
    let a = vdm_exec::execute(&q, &e).unwrap();
    let b = vdm_exec::execute(&opt, &e).unwrap();
    assert_eq!(a.num_rows(), b.num_rows());
    assert_eq!(a.num_rows(), 10);
}

#[test]
fn limit_not_pushed_across_duplicating_join() {
    let join = LogicalPlan::left_join(
        LogicalPlan::scan(orders()),
        LogicalPlan::scan(lineitem()),
        vec![(0, 0)],
    )
    .unwrap();
    let q = LogicalPlan::limit(join, 0, Some(5));
    let opt = Optimizer::hana().optimize(&q).unwrap();
    assert!(!limit_below_join(&opt), "limit across a 1:n join is unsound");
}

// --------------------------------------------------- Fig. 10: ASJ queries

/// Fig. 10(a): bare self-join on key.
fn asj_basic() -> PlanRef {
    let join = LogicalPlan::left_join(
        LogicalPlan::scan(customer()),
        LogicalPlan::scan(customer()),
        vec![(0, 0)],
    )
    .unwrap();
    // Use an augmenter field: c_name from the right side.
    LogicalPlan::project(join, vec![(Expr::col(0), "k".into()), (Expr::col(5), "name".into())])
        .unwrap()
}

/// Fig. 10(b): anchor is a subquery (projection + filter over the table).
fn asj_subquery() -> PlanRef {
    let anchor = LogicalPlan::project(
        LogicalPlan::filter(
            LogicalPlan::scan(customer()),
            Expr::col(2).binary(BinOp::Gt, Expr::int(0)),
        )
        .unwrap(),
        vec![(Expr::col(0), "k".into()), (Expr::col(3), "bal".into())],
    )
    .unwrap();
    let join = LogicalPlan::left_join(anchor, LogicalPlan::scan(customer()), vec![(0, 0)]).unwrap();
    LogicalPlan::project(join, vec![(Expr::col(0), "k".into()), (Expr::col(3), "name".into())])
        .unwrap()
}

/// Fig. 10(c): filtered augmenter; `subsuming` controls whether the anchor
/// predicate implies the augmenter predicate.
fn asj_filtered(subsuming: bool) -> PlanRef {
    let anchor =
        LogicalPlan::filter(LogicalPlan::scan(customer()), Expr::col(2).eq(Expr::int(1))).unwrap();
    let aug_pred =
        if subsuming { Expr::col(2).eq(Expr::int(1)) } else { Expr::col(2).eq(Expr::int(2)) };
    let aug = LogicalPlan::filter(LogicalPlan::scan(customer()), aug_pred).unwrap();
    let join = LogicalPlan::left_join(anchor, aug, vec![(0, 0)]).unwrap();
    LogicalPlan::project(join, vec![(Expr::col(0), "k".into()), (Expr::col(5), "name".into())])
        .unwrap()
}

fn self_join_gone(optimizer: &Optimizer, plan: &PlanRef) -> bool {
    let opt = optimizer.optimize(plan).unwrap();
    plan_stats(&opt).joins == 0
}

#[test]
fn table3_asj_matrix_only_hana() {
    let queries: Vec<PlanRef> = vec![asj_basic(), asj_subquery(), asj_filtered(true)];
    for profile in Profile::paper_systems() {
        for (i, q) in queries.iter().enumerate() {
            let gone = self_join_gone(&Optimizer::new(profile.clone()), q);
            assert_eq!(gone, profile.name() == "hana", "ASJ query {i} under {}", profile.name());
        }
    }
}

#[test]
fn asj_rewires_preserve_results() {
    let e = engine();
    let hana = Optimizer::hana();
    for q in [asj_basic(), asj_subquery(), asj_filtered(true)] {
        let opt = hana.optimize(&q).unwrap();
        assert_eq!(plan_stats(&opt).joins, 0);
        assert_equivalent(&q, &opt, &e);
    }
}

#[test]
fn asj_blocked_without_subsumption() {
    let q = asj_filtered(false);
    let opt = Optimizer::hana().optimize(&q).unwrap();
    assert_eq!(plan_stats(&opt).joins, 1, "non-subsuming augmenter filter must stay");
    let e = engine();
    assert_equivalent(&q, &opt, &e);
}

#[test]
fn asj_blocked_when_anchor_key_computed() {
    // Anchor key is k+0 — not a pure column: re-wiring is unsafe.
    let anchor = LogicalPlan::project(
        LogicalPlan::scan(customer()),
        vec![(Expr::col(0).binary(BinOp::Add, Expr::int(0)), "k".into())],
    )
    .unwrap();
    let join = LogicalPlan::left_join(anchor, LogicalPlan::scan(customer()), vec![(0, 0)]).unwrap();
    let q =
        LogicalPlan::project(join, vec![(Expr::col(0), "k".into()), (Expr::col(2), "name".into())])
            .unwrap();
    let opt = Optimizer::hana().optimize(&q).unwrap();
    assert_eq!(plan_stats(&opt).joins, 1);
}

#[test]
fn asj_through_anchor_join() {
    // Anchor contains an extra join; the self-join table sits on its left.
    let anchor = LogicalPlan::left_join(
        LogicalPlan::scan(customer()),
        LogicalPlan::scan(nation()),
        vec![(2, 0)],
    )
    .unwrap();
    let join = LogicalPlan::left_join(anchor, LogicalPlan::scan(customer()), vec![(0, 0)]).unwrap();
    let q = LogicalPlan::project(
        join,
        vec![
            (Expr::col(0), "k".into()),
            (Expr::col(5), "n_name".into()),
            (Expr::col(7), "name".into()),
        ],
    )
    .unwrap();
    let opt = Optimizer::hana().optimize(&q).unwrap();
    let stats = plan_stats(&opt);
    assert_eq!(stats.joins, 1, "only the nation join remains:\n{}", vdm_plan::explain(&opt));
    let e = engine();
    assert_equivalent(&q, &opt, &e);
}

// ------------------------------------------- Fig. 12: UNION ALL & UAJ

/// Fig. 12(a): augmenter = union of disjoint subsets of customer.
fn uaj_union_disjoint() -> PlanRef {
    let a =
        LogicalPlan::filter(LogicalPlan::scan(customer()), Expr::col(2).eq(Expr::int(1))).unwrap();
    let b = LogicalPlan::filter(
        LogicalPlan::scan(customer()),
        Expr::col(2).binary(BinOp::NotEq, Expr::int(1)),
    )
    .unwrap();
    let u = LogicalPlan::union_all(vec![a, b]).unwrap();
    uaj_query(u, 1, 0)
}

/// Fig. 12(b): augmenter = branch-id union (active ⊎ draft pattern).
fn uaj_union_branch_id() -> PlanRef {
    let mk = |bid: i64| {
        LogicalPlan::project(
            LogicalPlan::scan(customer()),
            vec![
                (Expr::int(bid), "bid".into()),
                (Expr::col(0), "key".into()),
                (Expr::col(1), "name".into()),
            ],
        )
        .unwrap()
    };
    let u = LogicalPlan::union_all(vec![mk(0), mk(1)]).unwrap();
    // orders LEFT JOIN u ON 0 = bid AND o_custkey = key; model the constant
    // bid probe as an extra column on the left side.
    let left = LogicalPlan::project(
        LogicalPlan::scan(orders()),
        vec![
            (Expr::col(0), "o_orderkey".into()),
            (Expr::col(1), "o_custkey".into()),
            (Expr::int(0), "probe_bid".into()),
        ],
    )
    .unwrap();
    let join = LogicalPlan::left_join(left, u, vec![(2, 0), (1, 1)]).unwrap();
    LogicalPlan::project(join, vec![(Expr::col(0), "o_orderkey".into())]).unwrap()
}

#[test]
fn table4_union_uaj_only_hana() {
    for profile in Profile::paper_systems() {
        let opt = Optimizer::new(profile.clone());
        assert_eq!(
            join_free(&opt, &uaj_union_disjoint()),
            profile.name() == "hana",
            "Fig 12(a) under {}",
            profile.name()
        );
        assert_eq!(
            join_free(&opt, &uaj_union_branch_id()),
            profile.name() == "hana",
            "Fig 12(b) under {}",
            profile.name()
        );
    }
}

#[test]
fn union_uaj_preserves_results() {
    let e = engine();
    let hana = Optimizer::hana();
    for q in [uaj_union_disjoint(), uaj_union_branch_id()] {
        let opt = hana.optimize(&q).unwrap();
        assert_equivalent(&q, &opt, &e);
    }
}

// ------------------------------------------- Fig. 13: UNION ALL & ASJ

/// Fig. 13(a): anchor-side UNION ALL, augmenter is the shared table.
fn asj_anchor_union() -> PlanRef {
    let mk = |lo: i64, hi: i64| {
        LogicalPlan::filter(
            LogicalPlan::scan(customer()),
            Expr::col(2)
                .binary(BinOp::GtEq, Expr::int(lo))
                .and(Expr::col(2).binary(BinOp::Lt, Expr::int(hi))),
        )
        .unwrap()
    };
    let anchor = LogicalPlan::union_all(vec![mk(0, 2), mk(2, 10)]).unwrap();
    let join = LogicalPlan::left_join(anchor, LogicalPlan::scan(customer()), vec![(0, 0)]).unwrap();
    LogicalPlan::project(join, vec![(Expr::col(0), "k".into()), (Expr::col(5), "name".into())])
        .unwrap()
}

#[test]
fn asj_through_anchor_union_hana_only() {
    for profile in Profile::paper_systems() {
        let gone = self_join_gone(&Optimizer::new(profile.clone()), &asj_anchor_union());
        assert_eq!(gone, profile.name() == "hana", "Fig 13(a) under {}", profile.name());
    }
    let e = engine();
    let q = asj_anchor_union();
    let opt = Optimizer::hana().optimize(&q).unwrap();
    assert_equivalent(&q, &opt, &e);
}

/// Fig. 13(b): UNION ALL on both sides (active ⊎ draft + custom field),
/// with or without declared CASE JOIN intent; `shallow` controls whether
/// the anchor branches are simple enough for the heuristic.
fn asj_case_join(intent: bool, shallow: bool) -> PlanRef {
    let mk_anchor = |bid: i64| -> PlanRef {
        let base = LogicalPlan::scan(customer());
        // The deep variant adds an extra projection layer: the shallow
        // heuristic only recognizes `Project over [Filter] Scan`, while
        // declared-intent threading walks through arbitrary pure wrappers.
        let base = if shallow {
            base
        } else {
            LogicalPlan::project(base, (0..4).map(|i| (Expr::col(i), format!("p{i}"))).collect())
                .unwrap()
        };
        LogicalPlan::project(
            base,
            vec![
                (Expr::int(bid), "bid".into()),
                (Expr::col(0), "key".into()),
                (Expr::col(1), "name".into()),
            ],
        )
        .unwrap()
    };
    let anchor = LogicalPlan::union_all(vec![mk_anchor(0), mk_anchor(1)]).unwrap();
    let mk_aug = |bid: i64| {
        LogicalPlan::project(
            LogicalPlan::scan(customer()),
            vec![
                (Expr::int(bid), "bid".into()),
                (Expr::col(0), "key".into()),
                (Expr::col(3), "ext".into()),
            ],
        )
        .unwrap()
    };
    let aug = LogicalPlan::union_all(vec![mk_aug(0), mk_aug(1)]).unwrap();
    let join = LogicalPlan::join(
        anchor,
        aug,
        JoinKind::LeftOuter,
        vec![(0, 0), (1, 1)],
        None,
        None,
        intent,
    )
    .unwrap();
    LogicalPlan::project(
        join,
        vec![
            (Expr::col(1), "key".into()),
            (Expr::col(2), "name".into()),
            (Expr::col(5), "ext".into()),
        ],
    )
    .unwrap()
}

#[test]
fn case_join_always_recognized_heuristic_only_shallow() {
    let hana = Optimizer::hana();
    // With intent: both shapes collapse.
    assert!(self_join_gone(&hana, &asj_case_join(true, true)));
    assert!(self_join_gone(&hana, &asj_case_join(true, false)));
    // Without intent (heuristic only — this is Fig. 14a): shallow works,
    // deep does not.
    assert!(self_join_gone(&hana, &asj_case_join(false, true)));
    let opt = hana.optimize(&asj_case_join(false, false)).unwrap();
    assert!(plan_stats(&opt).joins >= 1, "deep shape must defeat the heuristic");
    // Without either capability, nothing collapses.
    let none = Optimizer::new(
        Profile::hana().without(Capability::CaseJoin).without(Capability::AsjUnionHeuristic),
    );
    assert!(!self_join_gone(&none, &asj_case_join(true, true)));
}

#[test]
fn case_join_preserves_results() {
    let e = engine();
    let hana = Optimizer::hana();
    for q in [asj_case_join(true, true), asj_case_join(true, false), asj_case_join(false, true)] {
        let opt = hana.optimize(&q).unwrap();
        assert_equivalent(&q, &opt, &e);
    }
}

// ------------------------------------------------ §7.1: precision loss

#[test]
fn precision_loss_rewrites_sum_of_round() {
    // sum(round(o_totalprice * 1.1, 1)) with allow_precision_loss.
    let arg = Expr::Func {
        func: vdm_expr::ScalarFunc::Round,
        args: vec![
            Expr::col(2).binary(BinOp::Mul, Expr::Lit(Value::Dec("1.1".parse().unwrap()))),
            Expr::int(1),
        ],
    };
    let make = |allow: bool| {
        let mut agg = AggExpr::new(AggFunc::Sum, arg.clone());
        agg.allow_precision_loss = allow;
        LogicalPlan::aggregate(LogicalPlan::scan(orders()), vec![], vec![(agg, "s".into())])
            .unwrap()
    };
    let hana = Optimizer::hana();
    let opt = hana.optimize(&make(true)).unwrap();
    // The aggregate's argument must now be the bare column.
    let found = find_agg_arg(&opt);
    assert_eq!(found, Some(Expr::col(2)), "\n{}", vdm_plan::explain(&opt));
    // Without the flag, the rounding stays inside.
    let opt = hana.optimize(&make(false)).unwrap();
    assert_ne!(find_agg_arg(&opt), Some(Expr::col(2)));
    // Values differ only in the last decimal digits.
    let e = engine();
    let strict = vdm_exec::execute(&make(false), &e).unwrap();
    let loose = vdm_exec::execute(&hana.optimize(&make(true)).unwrap(), &e).unwrap();
    let a = strict.row(0)[0].as_dec().unwrap().to_f64();
    let b = loose.row(0)[0].as_dec().unwrap().to_f64();
    // Max per-row rounding error is 0.05 at scale 1; 50 input rows.
    assert!((a - b).abs() <= 2.5, "controlled precision loss only: {a} vs {b}");
    assert!((a - b).abs() > 0.0, "the interchange must actually change trailing digits");
}

fn find_agg_arg(plan: &PlanRef) -> Option<Expr> {
    if let vdm_plan::LogicalPlan::Aggregate { aggs, .. } = plan.as_ref() {
        return aggs.first().and_then(|(a, _)| a.arg.clone());
    }
    plan.children().iter().find_map(|c| find_agg_arg(c))
}

#[test]
fn eager_aggregation_below_aj() {
    // sum(o_totalprice) group by c_nationkey over orders ⟕ customer.
    let join = LogicalPlan::left_join(
        LogicalPlan::scan(orders()),
        LogicalPlan::scan(customer()),
        vec![(1, 0)],
    )
    .unwrap();
    let q = LogicalPlan::aggregate(
        join,
        vec![(Expr::col(5), "nat".into())],
        vec![(AggExpr::new(AggFunc::Sum, Expr::col(2)), "rev".into())],
    )
    .unwrap();
    let opt = Optimizer::hana().optimize(&q).unwrap();
    assert_eq!(plan_stats(&opt).aggregates, 2, "\n{}", vdm_plan::explain(&opt));
    let e = engine();
    assert_equivalent(&q, &opt, &e);
}

// ------------------------------------------------ misc rule soundness

#[test]
fn distinct_removed_over_unique_input() {
    let q = LogicalPlan::distinct(LogicalPlan::scan(customer()));
    let opt = Optimizer::hana().optimize(&q).unwrap();
    assert_eq!(plan_stats(&opt).distincts, 0);
    // Over a non-unique projection it stays.
    let p = LogicalPlan::project(LogicalPlan::scan(customer()), vec![(Expr::col(2), "nat".into())])
        .unwrap();
    let q = LogicalPlan::distinct(p);
    let opt = Optimizer::hana().optimize(&q).unwrap();
    assert_eq!(plan_stats(&opt).distincts, 1);
}

#[test]
fn filter_pushdown_moves_predicates_below_joins() {
    let join = LogicalPlan::inner_join(
        LogicalPlan::scan(orders()),
        LogicalPlan::scan(customer()),
        vec![(1, 0)],
    )
    .unwrap();
    let q = LogicalPlan::filter(
        join,
        Expr::col(0).binary(BinOp::Gt, Expr::int(10)).and(Expr::col(4).eq(Expr::str("cust1"))),
    )
    .unwrap();
    let opt = Optimizer::new(Profile::system_x()).optimize(&q).unwrap();
    // Both conjuncts sink below the join.
    fn top_is_filter(p: &PlanRef) -> bool {
        matches!(p.as_ref(), vdm_plan::LogicalPlan::Filter { .. })
    }
    assert!(!top_is_filter(&opt), "\n{}", vdm_plan::explain(&opt));
    let e = engine();
    assert_equivalent(&q, &opt, &e);
}

#[test]
fn optimizer_is_idempotent() {
    let hana = Optimizer::hana();
    for q in [uaj1a(), asj_subquery(), uaj_union_branch_id(), paging_query()] {
        let once = hana.optimize(&q).unwrap();
        let twice = hana.optimize(&once).unwrap();
        assert_eq!(plan_stats(&once), plan_stats(&twice));
    }
}

#[test]
fn trace_records_passes_that_changed_the_plan() {
    let hana = Optimizer::hana();
    let (opt, trace) = hana.optimize_traced(&uaj1a()).unwrap();
    assert_eq!(plan_stats(&opt).joins, 0);
    assert!(
        trace.steps.iter().any(|(_, name, _, _)| name.contains("UAJ")),
        "trace must mention the UAJ pass: {}",
        trace.render()
    );
    let rendered = trace.render();
    assert!(rendered.contains("joins"), "{rendered}");
    // A plan with nothing to do produces an empty trace.
    let bare = LogicalPlan::scan(orders());
    let (_, trace) = hana.optimize_traced(&bare).unwrap();
    assert_eq!(trace.render(), "no rewrites applied");
}

#[test]
fn filter_pushes_through_projection_and_union() {
    // Filter above a union of projected scans sinks into every child.
    let mk = || {
        LogicalPlan::project(
            LogicalPlan::scan(orders()),
            vec![(Expr::col(0), "k".into()), (Expr::col(1), "c".into())],
        )
        .unwrap()
    };
    let u = LogicalPlan::union_all(vec![mk(), mk()]).unwrap();
    let q = LogicalPlan::filter(u, Expr::col(1).eq(Expr::int(3))).unwrap();
    let opt = Optimizer::new(Profile::system_x()).optimize(&q).unwrap();
    // The top node is no longer a filter; each union child gained one.
    assert!(!matches!(opt.as_ref(), vdm_plan::LogicalPlan::Filter { .. }));
    assert_eq!(plan_stats(&opt).filters, 2, "{}", vdm_plan::explain(&opt));
    let e = engine();
    assert_equivalent(&q, &opt, &e);
}

#[test]
fn limit_pushes_into_union_children() {
    let mk = || LogicalPlan::scan(orders());
    let u = LogicalPlan::union_all(vec![mk(), mk()]).unwrap();
    let q = LogicalPlan::limit(u, 2, Some(5));
    let opt = Optimizer::hana().optimize(&q).unwrap();
    // Children got limited to offset+fetch = 7; the outer limit remains.
    fn count_limits(p: &PlanRef) -> usize {
        let own = matches!(p.as_ref(), vdm_plan::LogicalPlan::Limit { .. }) as usize;
        own + p.children().iter().map(|c| count_limits(c)).sum::<usize>()
    }
    assert_eq!(count_limits(&opt), 3, "{}", vdm_plan::explain(&opt));
    let e = engine();
    let a = vdm_exec::execute(&q, &e).unwrap();
    let b = vdm_exec::execute(&opt, &e).unwrap();
    assert_eq!(a.num_rows(), b.num_rows());
    assert_eq!(a.num_rows(), 5);
}

#[test]
fn cleanup_merges_projection_stacks() {
    let base = LogicalPlan::scan(orders());
    let p1 =
        LogicalPlan::project(base, vec![(Expr::col(1), "c".into()), (Expr::col(0), "k".into())])
            .unwrap();
    let p2 = LogicalPlan::project(p1, vec![(Expr::col(1), "key".into())]).unwrap();
    let opt = Optimizer::new(Profile::system_x()).optimize(&p2).unwrap();
    assert_eq!(plan_stats(&opt).projects, 1, "{}", vdm_plan::explain(&opt));
    let e = engine();
    assert_equivalent(&p2, &opt, &e);
}

#[test]
fn profile_differences_are_purely_about_work() {
    // The same query under every profile: identical rows, monotone work.
    let e = engine();
    let q = uaj2a();
    let mut scans = Vec::new();
    let mut reference: Option<Vec<Vec<Value>>> = None;
    for profile in Profile::paper_systems() {
        let opt = Optimizer::new(profile).optimize(&q).unwrap();
        let (batch, metrics) = vdm_exec::execute_at(&opt, &e, e.snapshot()).unwrap();
        let mut rows = batch.to_rows();
        rows.sort_by(|a, b| a[0].total_cmp(&b[0]));
        match &reference {
            None => reference = Some(rows),
            Some(want) => assert_eq!(&rows, want),
        }
        scans.push(metrics.rows_scanned);
    }
    // hana (index 0) does the least scanning; system_x (index 2) the most.
    assert!(scans[0] < scans[2], "scans per profile: {scans:?}");
}
