//! Baseline rules: constant folding, filter pushdown, redundant-DISTINCT
//! removal, and plan cleanup. Every system the paper evaluates implements
//! these, so all five profiles include them.

use crate::ctx::RewriteCtx;
use std::collections::BTreeSet;
use vdm_expr::{fold, predicate, Expr};
use vdm_plan::{transform_up, JoinKind, LogicalPlan, PlanRef};
use vdm_types::Result;

/// Folds constants in every expression of the plan. Nodes whose
/// expressions fold to themselves are kept as-is (preserving `Arc`
/// identity, and with it DAG sharing).
pub fn fold_constants(plan: &PlanRef) -> Result<PlanRef> {
    transform_up(plan, &mut |node| {
        Ok(match node.as_ref() {
            LogicalPlan::Project { input, exprs, .. } => {
                let folded: Vec<(Expr, String)> =
                    exprs.iter().map(|(e, n)| (fold::fold(e), n.clone())).collect();
                if folded == *exprs {
                    node
                } else {
                    LogicalPlan::project(input.clone(), folded)?
                }
            }
            LogicalPlan::Filter { input, predicate } => {
                let folded = fold::fold(predicate);
                if folded == *predicate {
                    node
                } else {
                    LogicalPlan::filter(input.clone(), folded)?
                }
            }
            LogicalPlan::Join { left, right, kind, on, filter, declared, asj_intent, .. } => {
                let folded = filter.as_ref().map(fold::fold);
                if folded == *filter {
                    node
                } else {
                    LogicalPlan::join(
                        left.clone(),
                        right.clone(),
                        *kind,
                        on.clone(),
                        folded,
                        *declared,
                        *asj_intent,
                    )?
                }
            }
            _ => node,
        })
    })
}

/// Pushes filter conjuncts toward the leaves: through projections (pure
/// columns), into the matching side of joins (inner joins both sides,
/// left-outer joins left side only), and into every UNION ALL child.
pub fn pushdown_filters(plan: &PlanRef) -> Result<PlanRef> {
    transform_up(plan, &mut |node| {
        if let LogicalPlan::Filter { input, predicate } = node.as_ref() {
            let conjuncts: Vec<Expr> =
                predicate::split_conjunction(predicate).into_iter().cloned().collect();
            let n_conjuncts = conjuncts.len();
            let (pushed, kept) = push_conjuncts(input, conjuncts)?;
            if std::sync::Arc::ptr_eq(&pushed, input) && kept.len() == n_conjuncts {
                return Ok(node);
            }
            let n_kept = kept.len();
            let out = if kept.is_empty() {
                pushed
            } else {
                LogicalPlan::filter(pushed, Expr::conjunction(kept))?
            };
            vdm_obs::rewrite::fired(
                "filter-pushdown",
                &node,
                Some(&out),
                &format!(
                    "{} of {n_conjuncts} conjunct(s) pushed below {}",
                    n_conjuncts - n_kept,
                    input.op_name()
                ),
            );
            return Ok(out);
        }
        Ok(node)
    })
}

/// Attempts to push each conjunct below `plan`; returns the new plan and
/// the conjuncts that could not be pushed.
fn push_conjuncts(plan: &PlanRef, conjuncts: Vec<Expr>) -> Result<(PlanRef, Vec<Expr>)> {
    match plan.as_ref() {
        LogicalPlan::Project { input, exprs, .. } => {
            // A conjunct pushes when every referenced output column is a
            // pure column reference (substitute and descend).
            let mut pushable = Vec::new();
            let mut kept = Vec::new();
            for c in conjuncts {
                let mut refs = BTreeSet::new();
                c.referenced_columns(&mut refs);
                if refs.iter().all(|&i| matches!(exprs[i].0, Expr::Col(_))) {
                    pushable.push(c.substitute_columns(&|i| exprs[i].0.clone()));
                } else {
                    kept.push(c);
                }
            }
            if pushable.is_empty() {
                return Ok((plan.clone(), kept));
            }
            let (new_input, rest) = push_conjuncts(input, pushable)?;
            let inner = if rest.is_empty() {
                new_input
            } else {
                LogicalPlan::filter(new_input, Expr::conjunction(rest))?
            };
            Ok((LogicalPlan::project(inner, exprs.clone())?, kept))
        }
        LogicalPlan::Filter { input, predicate } => {
            // Merge with the existing filter and push the union of
            // conjuncts below it.
            let mut all: Vec<Expr> =
                predicate::split_conjunction(predicate).into_iter().cloned().collect();
            all.extend(conjuncts);
            let (new_input, rest) = push_conjuncts(input, all)?;
            let out = if rest.is_empty() {
                new_input
            } else {
                LogicalPlan::filter(new_input, Expr::conjunction(rest))?
            };
            Ok((out, Vec::new()))
        }
        LogicalPlan::Join { left, right, kind, on, filter, declared, asj_intent, .. } => {
            let nl = left.schema().len();
            let mut to_left = Vec::new();
            let mut to_right = Vec::new();
            let mut kept = Vec::new();
            for c in conjuncts {
                let mut refs = BTreeSet::new();
                c.referenced_columns(&mut refs);
                let left_only = refs.iter().all(|&i| i < nl);
                let right_only = refs.iter().all(|&i| i >= nl);
                if left_only {
                    to_left.push(c);
                } else if right_only && *kind == JoinKind::Inner {
                    to_right.push(c.remap_columns(&|i| i - nl));
                } else {
                    // Right-side conjuncts cannot cross a left-outer join
                    // (they would filter before NULL-padding).
                    kept.push(c);
                }
            }
            if to_left.is_empty() && to_right.is_empty() {
                return Ok((plan.clone(), kept));
            }
            let (new_left, rest_l) = push_conjuncts(left, to_left)?;
            let new_left = if rest_l.is_empty() {
                new_left
            } else {
                LogicalPlan::filter(new_left, Expr::conjunction(rest_l))?
            };
            let (new_right, rest_r) = push_conjuncts(right, to_right)?;
            let new_right = if rest_r.is_empty() {
                new_right
            } else {
                LogicalPlan::filter(new_right, Expr::conjunction(rest_r))?
            };
            let new_join = LogicalPlan::join(
                new_left,
                new_right,
                *kind,
                on.clone(),
                filter.clone(),
                *declared,
                *asj_intent,
            )?;
            Ok((new_join, kept))
        }
        LogicalPlan::UnionAll { inputs, .. } => {
            if conjuncts.is_empty() {
                return Ok((plan.clone(), conjuncts));
            }
            let mut new_children = Vec::with_capacity(inputs.len());
            for child in inputs {
                let (new_child, rest) = push_conjuncts(child, conjuncts.clone())?;
                let wrapped = if rest.is_empty() {
                    new_child
                } else {
                    LogicalPlan::filter(new_child, Expr::conjunction(rest))?
                };
                new_children.push(wrapped);
            }
            Ok((LogicalPlan::union_all(new_children)?, Vec::new()))
        }
        _ => Ok((plan.clone(), conjuncts)),
    }
}

/// Removes DISTINCT when the input is already duplicate-free (its full
/// column set covers a unique set under the profile's derivations).
pub fn remove_redundant_distinct(plan: &PlanRef, ctx: &RewriteCtx<'_>) -> Result<PlanRef> {
    transform_up(plan, &mut |node| {
        if let LogicalPlan::Distinct { input } = node.as_ref() {
            let all: BTreeSet<usize> = (0..input.schema().len()).collect();
            let sets = ctx.unique_sets(input);
            if vdm_plan::props::covers_unique(&sets, &all) {
                vdm_obs::rewrite::fired(
                    "distinct-removal",
                    &node,
                    Some(input),
                    "input columns cover a derived unique set, so DISTINCT is a no-op",
                );
                return Ok(input.clone());
            }
        }
        Ok(node)
    })
}

/// Cleanup: merges stacked projections and drops identity projections
/// whose names match the child's.
pub fn cleanup(plan: &PlanRef) -> Result<PlanRef> {
    transform_up(plan, &mut |node| cleanup_node(node))
}

/// Local simplification step. Children are already clean when this runs;
/// it only recurses into nodes it creates itself (a merged projection, the
/// per-child projections of a pushed-down union).
fn cleanup_node(node: PlanRef) -> Result<PlanRef> {
    if let LogicalPlan::Project { input, exprs, .. } = node.as_ref() {
        // Merge Project(Project(x)).
        if let LogicalPlan::Project { input: grand, exprs: inner_exprs, .. } = input.as_ref() {
            let merged: Vec<(Expr, String)> = exprs
                .iter()
                .map(|(e, n)| (e.substitute_columns(&|i| inner_exprs[i].0.clone()), n.clone()))
                .collect();
            return cleanup_node(LogicalPlan::project(grand.clone(), merged)?);
        }
        // Push Project(UnionAll(c...)) into the children: each child then
        // merges with its own projection, removing a whole materialization
        // pass (union output ordinals equal child ordinals positionally).
        if let LogicalPlan::UnionAll { inputs, .. } = input.as_ref() {
            let children = inputs
                .iter()
                .map(|c| cleanup_node(LogicalPlan::project(c.clone(), exprs.clone())?))
                .collect::<Result<Vec<_>>>()?;
            return LogicalPlan::union_all(children);
        }
        // Drop identity projections.
        let cs = input.schema();
        let identity = exprs.len() == cs.len()
            && exprs.iter().enumerate().all(|(i, (e, n))| {
                matches!(e, Expr::Col(c) if *c == i) && cs.field(i).name.eq_ignore_ascii_case(n)
            });
        if identity {
            return Ok(input.clone());
        }
    }
    Ok(node)
}
