//! Cost-based join ordering (§7's "beyond rule-based" outlook).
//!
//! The rule-based passes (UAJ/ASJ elimination, pruning) run first and
//! *remove* joins; whatever inner joins survive are then reordered here by
//! estimated cost. The pass finds maximal *commutable regions* — trees of
//! plain inner equi-joins (no residual filter, no declared cardinality, no
//! ASJ intent) — and re-plans each region in isolation:
//!
//! * leaves (anything that is not a plain inner join: scans, filters,
//!   aggregates, outer joins, declared-cardinality joins) are kept intact,
//!   so outer-join and DAC semantics are never disturbed;
//! * edge selectivities are calibrated from the estimator itself on the
//!   *original* tree (override-aware, so observed feedback flows into the
//!   same model), making `rows(S)` independent of join order;
//! * regions of ≤ 10 relations are planned exactly by connected-subgraph
//!   dynamic programming over subset bitmasks (DPsub); larger regions fall
//!   back to greedy smallest-result-first merging;
//! * the cost is `C_out`: the sum of estimated intermediate result sizes.
//!   The reordered tree is adopted only when strictly cheaper than the
//!   original under the same model, and the region is wrapped in a
//!   compensating projection restoring the exact original schema — results
//!   stay bit-identical at every ordering.

use std::collections::HashMap;
use std::sync::Arc;
use vdm_expr::Expr;
use vdm_plan::{map_children, Cardinality, JoinKind, LogicalPlan, PlanRef};
use vdm_types::Result;

/// Largest region planned by exact DP; larger regions go greedy.
pub const DP_MAX_RELATIONS: usize = 10;

/// Reorders every maximal commutable inner-join region of `plan` by
/// estimated cost. `card` supplies memoized per-node estimates (with any
/// observed-cardinality overrides already attached).
pub fn join_order_pass(plan: &PlanRef, card: &Cardinality) -> Result<PlanRef> {
    let mut memo: HashMap<*const LogicalPlan, PlanRef> = HashMap::new();
    rewrite(plan, card, &mut memo)
}

fn rewrite(
    plan: &PlanRef,
    card: &Cardinality,
    memo: &mut HashMap<*const LogicalPlan, PlanRef>,
) -> Result<PlanRef> {
    let key = Arc::as_ptr(plan);
    if let Some(done) = memo.get(&key) {
        return Ok(done.clone());
    }
    let out = if is_region_join(plan) {
        reorder_region(plan, card, memo)?
    } else if plan.children().is_empty() {
        plan.clone()
    } else {
        let kids =
            plan.children().iter().map(|c| rewrite(c, card, memo)).collect::<Result<Vec<_>>>()?;
        map_children(plan, kids)?
    };
    memo.insert(key, out.clone());
    Ok(out)
}

/// A plain inner equi-join: commutable, safe to re-associate. Residual
/// filters, declared cardinalities and ASJ intent pin a join in place (the
/// metadata refers to that specific left/right pairing).
fn is_region_join(plan: &PlanRef) -> bool {
    matches!(
        plan.as_ref(),
        LogicalPlan::Join {
            kind: JoinKind::Inner,
            filter: None,
            declared: None,
            asj_intent: false,
            on,
            ..
        } if !on.is_empty()
    )
}

/// One hyperedge of the region's join graph: the equi-join pairs that
/// connect two leaves, with the calibrated selectivity of applying them.
struct Edge {
    a: usize,
    b: usize,
    /// `(column local to leaf a, column local to leaf b)` pairs.
    pairs: Vec<(usize, usize)>,
    sel: f64,
}

/// A planned sub-join during enumeration: the plan plus the identity of
/// each output column as `(leaf index, column local to that leaf)`.
#[derive(Clone)]
struct SubPlan {
    plan: PlanRef,
    cols: Vec<(usize, usize)>,
}

struct Region {
    /// Leaf sub-plans in original in-order (defines the original global
    /// column numbering: leaf 0's columns first, then leaf 1's, ...).
    leaves: Vec<PlanRef>,
    /// Global column ordinal → (leaf index, local column).
    col_of: Vec<(usize, usize)>,
    edges: Vec<Edge>,
}

fn reorder_region(
    plan: &PlanRef,
    card: &Cardinality,
    memo: &mut HashMap<*const LogicalPlan, PlanRef>,
) -> Result<PlanRef> {
    let mut leaves: Vec<PlanRef> = Vec::new();
    let mut raw_edges: Vec<(usize, usize)> = Vec::new();
    collect(plan, 0, &mut leaves, &mut raw_edges, card, memo)?;
    let n = leaves.len();
    if !(3..=32).contains(&n) {
        // Below 3 there is one shape modulo commutation; above 32 the
        // bitmask machinery would overflow (and no real VDM query gets
        // there). Keep the original shape either way.
        return rebuild_original(plan, card, memo);
    }

    // Global column numbering over the original leaf order.
    let mut col_of = Vec::new();
    for (li, leaf) in leaves.iter().enumerate() {
        for c in 0..leaf.schema().len() {
            col_of.push((li, c));
        }
    }

    // Group raw column pairs into per-leaf-pair hyperedges.
    let mut by_pair: HashMap<(usize, usize), Vec<(usize, usize)>> = HashMap::new();
    for &(gl, gr) in &raw_edges {
        let (la, ca) = col_of[gl];
        let (lb, cb) = col_of[gr];
        debug_assert_ne!(la, lb);
        let (key, pair) = if la < lb { ((la, lb), (ca, cb)) } else { ((lb, la), (cb, ca)) };
        by_pair.entry(key).or_default().push(pair);
    }
    let mut edges: Vec<Edge> =
        by_pair.into_iter().map(|((a, b), pairs)| Edge { a, b, pairs, sel: 1.0 }).collect();
    edges.sort_by_key(|e| (e.a, e.b));

    // Calibrate edge selectivities from the original tree so rows(S) is
    // order-independent and agrees with the estimator at every original
    // intermediate.
    calibrate(plan, card, &col_of, &mut edges);

    let region = Region { leaves, col_of, edges };
    let leaf_rows: Vec<f64> = region.leaves.iter().map(|l| card.estimate(l)).collect();

    // rows(S) for every leaf subset.
    let rows = |s: u32| -> f64 {
        let mut r = 1.0f64;
        for (i, leaf) in leaf_rows.iter().enumerate().take(n) {
            if s & (1 << i) != 0 {
                r *= leaf;
            }
        }
        for e in &region.edges {
            if s & (1 << e.a) != 0 && s & (1 << e.b) != 0 {
                r *= e.sel;
            }
        }
        r
    };

    let original_cost = original_region_cost(plan, &rows);

    let (best, best_cost) =
        if n <= DP_MAX_RELATIONS { dp_plan(&region, &rows)? } else { greedy_plan(&region, &rows)? };

    if best_cost + 1e-9 >= original_cost {
        // Not strictly cheaper under the same model: keep the original
        // shape (stability beats churn).
        return rebuild_original(plan, card, memo);
    }

    // Compensating projection restoring the original column order/names.
    let schema = plan.schema();
    let mut pos: HashMap<(usize, usize), usize> = HashMap::new();
    for (i, lc) in best.cols.iter().enumerate() {
        pos.insert(*lc, i);
    }
    let out = if best.cols == region.col_of {
        best.plan.clone()
    } else {
        let exprs: Vec<(Expr, String)> = region
            .col_of
            .iter()
            .enumerate()
            .map(|(g, lc)| (Expr::Col(pos[lc]), schema.field(g).name.clone()))
            .collect();
        LogicalPlan::project(best.plan.clone(), exprs)?
    };
    vdm_obs::rewrite::fired(
        "join-reorder",
        plan,
        Some(&out),
        &format!(
            "{} relations, cost {:.3e} -> {:.3e} (C_out, estimated)",
            n, original_cost, best_cost
        ),
    );
    Ok(out)
}

/// Recursively gathers the region under `node`: leaves in in-order, join
/// column pairs as global ordinals. Non-region children are themselves
/// rewritten (their own nested regions get reordered independently).
fn collect(
    node: &PlanRef,
    base: usize,
    leaves: &mut Vec<PlanRef>,
    raw_edges: &mut Vec<(usize, usize)>,
    card: &Cardinality,
    memo: &mut HashMap<*const LogicalPlan, PlanRef>,
) -> Result<usize> {
    if is_region_join(node) {
        let LogicalPlan::Join { left, right, on, .. } = node.as_ref() else { unreachable!() };
        let lw = collect(left, base, leaves, raw_edges, card, memo)?;
        let rw = collect(right, base + lw, leaves, raw_edges, card, memo)?;
        for &(l, r) in on {
            raw_edges.push((base + l, base + lw + r));
        }
        Ok(lw + rw)
    } else {
        let processed = rewrite(node, card, memo)?;
        let w = processed.schema().len();
        leaves.push(processed);
        Ok(w)
    }
}

/// Walks the original region tree bottom-up, assigning each internal
/// join's *introduced* selectivity — `est(join) / (est(l) * est(r))` —
/// evenly (geometric split) across the hyperedges it introduces. This
/// reproduces the estimator's numbers on the original shape exactly and
/// keeps `rows(S)` a pure product, hence order-independent.
fn calibrate(node: &PlanRef, card: &Cardinality, col_of: &[(usize, usize)], edges: &mut [Edge]) {
    // Re-derive leaf spans by re-walking; track (start, width) per subtree.
    fn walk(
        node: &PlanRef,
        base: usize,
        card: &Cardinality,
        col_of: &[(usize, usize)],
        edges: &mut [Edge],
    ) -> usize {
        if !is_region_join(node) {
            return node.schema().len();
        }
        let LogicalPlan::Join { left, right, on, .. } = node.as_ref() else { unreachable!() };
        let lw = walk(left, base, card, col_of, edges);
        let rw = walk(right, base + lw, card, col_of, edges);
        let el = card.estimate(left).max(1e-9);
        let er = card.estimate(right).max(1e-9);
        let ej = card.estimate(node);
        let sel = (ej / (el * er)).clamp(1e-12, 1.0);
        // The hyperedges this join introduces: leaf pairs straddling the
        // two sides, named by this node's `on` pairs.
        let mut introduced: Vec<usize> = Vec::new();
        for &(l, r) in on {
            let (la, _) = col_of[base + l];
            let (lb, _) = col_of[base + lw + r];
            let (a, b) = if la < lb { (la, lb) } else { (lb, la) };
            if let Some(i) = edges.iter().position(|e| e.a == a && e.b == b) {
                if !introduced.contains(&i) {
                    introduced.push(i);
                }
            }
        }
        if !introduced.is_empty() {
            let per = sel.powf(1.0 / introduced.len() as f64);
            for i in introduced {
                edges[i].sel *= per;
            }
        }
        lw + rw
    }
    walk(node, 0, card, col_of, edges);
}

/// `C_out` of the original tree under the shared `rows(S)` model.
fn original_region_cost(node: &PlanRef, rows: &dyn Fn(u32) -> f64) -> f64 {
    fn walk(
        node: &PlanRef,
        next_leaf: &mut usize,
        rows: &dyn Fn(u32) -> f64,
        cost: &mut f64,
    ) -> u32 {
        if !is_region_join(node) {
            *next_leaf += 1;
            return 1u32 << (*next_leaf - 1);
        }
        let LogicalPlan::Join { left, right, .. } = node.as_ref() else { unreachable!() };
        let lmask = walk(left, next_leaf, rows, cost);
        let rmask = walk(right, next_leaf, rows, cost);
        let s = lmask | rmask;
        *cost += rows(s);
        s
    }
    let mut next = 0usize;
    let mut cost = 0.0;
    walk(node, &mut next, rows, &mut cost);
    cost
}

/// Rebuilds the original region shape with children individually
/// rewritten (nested regions below non-join leaves still get reordered).
fn rebuild_original(
    plan: &PlanRef,
    card: &Cardinality,
    memo: &mut HashMap<*const LogicalPlan, PlanRef>,
) -> Result<PlanRef> {
    if is_region_join(plan) {
        let LogicalPlan::Join { left, right, on, .. } = plan.as_ref() else { unreachable!() };
        let l = rebuild_original(left, card, memo)?;
        let r = rebuild_original(right, card, memo)?;
        if Arc::ptr_eq(&l, left) && Arc::ptr_eq(&r, right) {
            Ok(plan.clone())
        } else {
            LogicalPlan::inner_join(l, r, on.clone())
        }
    } else {
        rewrite(plan, card, memo)
    }
}

/// Builds the join for one DP/greedy merge step: bigger estimated side on
/// the left (the executor builds its hash table on the right).
fn join_parts(
    left: &SubPlan,
    right: &SubPlan,
    edges: &[Edge],
    lmask: u32,
    rmask: u32,
) -> Result<SubPlan> {
    let mut lpos: HashMap<(usize, usize), usize> = HashMap::new();
    for (i, lc) in left.cols.iter().enumerate() {
        lpos.insert(*lc, i);
    }
    let mut rpos: HashMap<(usize, usize), usize> = HashMap::new();
    for (i, lc) in right.cols.iter().enumerate() {
        rpos.insert(*lc, i);
    }
    let mut on: Vec<(usize, usize)> = Vec::new();
    for e in edges {
        let (a_in_l, b_in_l) = (lmask & (1 << e.a) != 0, lmask & (1 << e.b) != 0);
        let (a_in_r, b_in_r) = (rmask & (1 << e.a) != 0, rmask & (1 << e.b) != 0);
        if a_in_l && b_in_r {
            for &(ca, cb) in &e.pairs {
                on.push((lpos[&(e.a, ca)], rpos[&(e.b, cb)]));
            }
        } else if b_in_l && a_in_r {
            for &(ca, cb) in &e.pairs {
                on.push((lpos[&(e.b, cb)], rpos[&(e.a, ca)]));
            }
        }
    }
    debug_assert!(!on.is_empty(), "join_parts called on disconnected split");
    on.sort_unstable();
    on.dedup();
    let plan = LogicalPlan::inner_join(left.plan.clone(), right.plan.clone(), on)?;
    let mut cols = left.cols.clone();
    cols.extend_from_slice(&right.cols);
    Ok(SubPlan { plan, cols })
}

/// Exact DPsub over connected subsets (≤ [`DP_MAX_RELATIONS`] leaves).
fn dp_plan(region: &Region, rows: &dyn Fn(u32) -> f64) -> Result<(SubPlan, f64)> {
    let n = region.leaves.len();
    let full: u32 = (1u32 << n) - 1;
    // Adjacency bitmasks for connectivity tests.
    let mut adj = vec![0u32; n];
    for e in &region.edges {
        adj[e.a] |= 1 << e.b;
        adj[e.b] |= 1 << e.a;
    }
    let connected = |s: u32| -> bool {
        let first = s.trailing_zeros();
        let mut seen = 1u32 << first;
        loop {
            let mut grown = seen;
            let mut t = seen;
            while t != 0 {
                let i = t.trailing_zeros() as usize;
                t &= t - 1;
                grown |= adj[i] & s;
            }
            if grown == seen {
                break;
            }
            seen = grown;
        }
        seen == s
    };
    let crossing = |a: u32, b: u32| -> bool {
        region.edges.iter().any(|e| {
            (a & (1 << e.a) != 0 && b & (1 << e.b) != 0)
                || (b & (1 << e.a) != 0 && a & (1 << e.b) != 0)
        })
    };

    let mut best: Vec<Option<(f64, SubPlan)>> = vec![None; (full as usize) + 1];
    for (i, leaf) in region.leaves.iter().enumerate() {
        let cols: Vec<(usize, usize)> = (0..leaf.schema().len()).map(|c| (i, c)).collect();
        best[1usize << i] = Some((0.0, SubPlan { plan: leaf.clone(), cols }));
    }
    for s in 1..=full {
        if s.count_ones() < 2 || !connected(s) {
            continue;
        }
        let out_rows = rows(s);
        let mut choice: Option<(f64, u32)> = None;
        // Enumerate proper subsets of s; visit each unordered split once.
        let mut t = (s - 1) & s;
        while t != 0 {
            let c = s & !t;
            if t < c {
                let (a, b) = (t, c);
                if let (Some((ca, _)), Some((cb, _))) =
                    (best[a as usize].as_ref(), best[b as usize].as_ref())
                {
                    if crossing(a, b) {
                        let cost = ca + cb + out_rows;
                        if choice.map(|(c0, _)| cost < c0).unwrap_or(true) {
                            choice = Some((cost, a));
                        }
                    }
                }
            }
            t = (t - 1) & s;
        }
        if let Some((cost, a)) = choice {
            let b = s & !a;
            let (pa, pb) = (
                best[a as usize].as_ref().unwrap().1.clone(),
                best[b as usize].as_ref().unwrap().1.clone(),
            );
            // Bigger side left (probe), smaller side right (build).
            let joined = if rows(a) >= rows(b) {
                join_parts(&pa, &pb, &region.edges, a, b)?
            } else {
                join_parts(&pb, &pa, &region.edges, b, a)?
            };
            best[s as usize] = Some((cost, joined));
        }
    }
    let (cost, plan) =
        best[full as usize].take().expect("region join graph is connected by construction");
    Ok((plan, cost))
}

/// Greedy smallest-result-first merging for large regions: repeatedly
/// joins the edge-connected component pair with the smallest estimated
/// result.
fn greedy_plan(region: &Region, rows: &dyn Fn(u32) -> f64) -> Result<(SubPlan, f64)> {
    let mut comps: Vec<(u32, SubPlan)> = region
        .leaves
        .iter()
        .enumerate()
        .map(|(i, leaf)| {
            let cols: Vec<(usize, usize)> = (0..leaf.schema().len()).map(|c| (i, c)).collect();
            (1u32 << i, SubPlan { plan: leaf.clone(), cols })
        })
        .collect();
    let mut cost = 0.0;
    while comps.len() > 1 {
        let mut pick: Option<(f64, usize, usize)> = None;
        for i in 0..comps.len() {
            for j in i + 1..comps.len() {
                let (a, b) = (comps[i].0, comps[j].0);
                let connected = region.edges.iter().any(|e| {
                    (a & (1 << e.a) != 0 && b & (1 << e.b) != 0)
                        || (b & (1 << e.a) != 0 && a & (1 << e.b) != 0)
                });
                if !connected {
                    continue;
                }
                let r = rows(a | b);
                if pick.map(|(r0, _, _)| r < r0).unwrap_or(true) {
                    pick = Some((r, i, j));
                }
            }
        }
        let (r, i, j) = pick.expect("region join graph is connected by construction");
        cost += r;
        // i < j, so removing j first leaves i in place.
        let (bj, pj) = comps.swap_remove(j);
        let (bi, pi) = comps.swap_remove(i);
        let merged = if rows(bi) >= rows(bj) {
            join_parts(&pi, &pj, &region.edges, bi, bj)?
        } else {
            join_parts(&pj, &pi, &region.edges, bj, bi)?
        };
        comps.push((bi | bj, merged));
    }
    let (_, plan) = comps.pop().unwrap();
    Ok((plan, cost))
}
