//! The shared rewrite context threaded through every optimizer rule.
//!
//! `RewriteCtx` bundles the three things a rule needs: the capability
//! [`Profile`] (what is it allowed to do), the [`PropertyCache`] (memoized
//! plan properties — unique sets, lineage, emptiness, nullability), and the
//! observability sink for rule-firing events. Rules never derive properties
//! themselves: every probe goes through the cache, so a property of a
//! shared DAG node is computed once per `optimize()` call instead of once
//! per probing rule per fixpoint round.

use crate::profile::Profile;
use crate::Capability;
use std::collections::BTreeSet;
use std::rc::Rc;
use vdm_plan::props::DeriveOptions;
use vdm_plan::{DeclaredCardinality, Origin, PlanRef, PropertyCache};

/// Everything a rewrite rule needs, borrowed for one `optimize()` call.
pub struct RewriteCtx<'a> {
    /// The capability profile in force.
    pub profile: &'a Profile,
    /// Memoized plan properties (see [`PropertyCache`]).
    pub props: &'a PropertyCache,
    opts: DeriveOptions,
    legacy_normalize: bool,
}

impl<'a> RewriteCtx<'a> {
    /// A context for `profile`, probing properties through `props`.
    pub fn new(profile: &'a Profile, props: &'a PropertyCache) -> RewriteCtx<'a> {
        RewriteCtx { profile, props, opts: profile.derive_options(), legacy_normalize: false }
    }

    /// Re-enables the pre-refactor behaviour of normalizing every UNION
    /// ALL child with a fresh projection on every pruning pass, even when
    /// the projection is an identity. The stacked projections made plans
    /// *grow* each fixpoint round (cleanup collapses them at the end, so
    /// final plans are unaffected) — the legacy cost model turns this on
    /// so `opt_sweep`'s baseline reproduces what the old optimizer
    /// actually paid.
    pub fn with_legacy_normalize(mut self, on: bool) -> RewriteCtx<'a> {
        self.legacy_normalize = on;
        self
    }

    /// Whether the legacy always-normalize behaviour is in force.
    pub fn legacy_normalize(&self) -> bool {
        self.legacy_normalize
    }

    /// The profile's derivation options (computed once, not per probe).
    pub fn opts(&self) -> &DeriveOptions {
        &self.opts
    }

    /// Whether the profile has `cap` — sugar for `self.profile.has(cap)`.
    pub fn has(&self, cap: Capability) -> bool {
        self.profile.has(cap)
    }

    /// Memoized unique key sets of `plan` under the profile's options.
    pub fn unique_sets(&self, plan: &PlanRef) -> Rc<Vec<BTreeSet<usize>>> {
        self.props.unique_sets(plan, &self.opts)
    }

    /// Memoized "right side matches at most once" test (§4.2's cardinality
    /// precondition for every augmentation-join rewrite).
    pub fn right_at_most_one(
        &self,
        right: &PlanRef,
        on: &[(usize, usize)],
        declared: Option<DeclaredCardinality>,
    ) -> bool {
        self.props.right_at_most_one(right, on, declared, &self.opts)
    }

    /// Memoized static-emptiness test (AJ 2b evidence).
    pub fn statically_empty(&self, plan: &PlanRef) -> bool {
        self.props.statically_empty(plan)
    }

    /// Memoized base-table origin of output ordinal `ord`.
    pub fn origin(&self, plan: &PlanRef, ord: usize) -> Option<Origin> {
        self.props.origin(plan, ord)
    }
}
