//! LIMIT pushdown across augmentation joins (§4.4, Fig. 6).
//!
//! Paging queries (`select * from V limit k offset n`) dominate UI data
//! access in S/4HANA. When the join below a LIMIT is purely augmentative,
//! the left side has a row-for-row correspondence with the join output, so
//! the entire LIMIT/OFFSET moves below the join: the join then probes only
//! `k` rows instead of the whole table — and, as the paper notes, this
//! changes which side is worth building the hash table on.

use crate::ctx::RewriteCtx;
use vdm_plan::{transform_up, JoinKind, LogicalPlan, PlanRef};
use vdm_types::Result;

/// Runs the limit-pushdown pass bottom-up.
pub fn limit_pass(plan: &PlanRef, ctx: &RewriteCtx<'_>) -> Result<PlanRef> {
    transform_up(plan, &mut |node| {
        if let LogicalPlan::Limit { input, skip, fetch } = node.as_ref() {
            if let Some(pushed) = push_limit(input, *skip, *fetch, ctx)? {
                let fetch_s = fetch.map(|f| f.to_string()).unwrap_or_else(|| "ALL".into());
                vdm_obs::rewrite::fired(
                    "limit-pushdown",
                    &node,
                    Some(&pushed),
                    &format!(
                        "§4.4: LIMIT {fetch_s} OFFSET {skip} pushed below {} \
                         (row-for-row correspondence across the augmentation)",
                        input.op_name()
                    ),
                );
                return Ok(pushed);
            }
        }
        Ok(node)
    })
}

/// Attempts to push `LIMIT fetch OFFSET skip` below `input`. Returns the
/// rewritten plan (including the operator the limit moved through).
fn push_limit(
    input: &PlanRef,
    skip: u64,
    fetch: Option<u64>,
    ctx: &RewriteCtx<'_>,
) -> Result<Option<PlanRef>> {
    match input.as_ref() {
        LogicalPlan::Join { left, right, kind, on, filter, declared, asj_intent, .. } => {
            // Only across *augmentation* joins: row-for-row correspondence.
            let augmentative = *kind == JoinKind::LeftOuter
                && filter.is_none()
                && (ctx.right_at_most_one(right, on, *declared) || ctx.statically_empty(right));
            if !augmentative {
                return Ok(None);
            }
            // Already limited? Don't loop.
            if matches!(left.as_ref(), LogicalPlan::Limit { .. }) {
                return Ok(None);
            }
            let limited_left = LogicalPlan::limit(left.clone(), skip, fetch);
            // Try pushing further down recursively.
            let new_left = match push_limit(left, skip, fetch, ctx)? {
                Some(deeper) => deeper,
                None => limited_left,
            };
            let new_join = LogicalPlan::join(
                new_left,
                right.clone(),
                *kind,
                on.clone(),
                filter.clone(),
                *declared,
                *asj_intent,
            )?;
            Ok(Some(new_join))
        }
        LogicalPlan::Project { input: inner, exprs, .. } => {
            // LIMIT commutes with projection.
            match push_limit(inner, skip, fetch, ctx)? {
                Some(new_inner) => Ok(Some(LogicalPlan::project(new_inner, exprs.clone())?)),
                None => Ok(None),
            }
        }
        LogicalPlan::UnionAll { inputs, .. } => {
            // LIMIT k OFFSET n over UNION ALL: every child needs at most
            // n+k rows; the outer limit still applies above the union.
            let child_fetch = match fetch {
                Some(f) => f.saturating_add(skip),
                None => return Ok(None),
            };
            let mut changed = false;
            let new_children = inputs
                .iter()
                .map(|c| {
                    if already_limited(c, child_fetch) {
                        return Ok(c.clone());
                    }
                    changed = true;
                    let limited = match push_limit(c, 0, Some(child_fetch), ctx)? {
                        Some(deeper) => deeper,
                        None => LogicalPlan::limit(c.clone(), 0, Some(child_fetch)),
                    };
                    Ok(limited)
                })
                .collect::<Result<Vec<_>>>()?;
            if !changed {
                return Ok(None);
            }
            let union = LogicalPlan::union_all(new_children)?;
            Ok(Some(LogicalPlan::limit(union, skip, fetch)))
        }
        _ => Ok(None),
    }
}

/// True when the subtree already emits at most `fetch` rows because of an
/// earlier pushdown (prevents the fixpoint loop from stacking limits).
fn already_limited(plan: &PlanRef, fetch: u64) -> bool {
    match plan.as_ref() {
        LogicalPlan::Limit { fetch: Some(f), skip, .. } => skip.saturating_add(*f) <= fetch,
        LogicalPlan::Project { input, .. } => already_limited(input, fetch),
        // An AJ join emits exactly as many rows as its (limited) left side.
        LogicalPlan::Join { left, kind: JoinKind::LeftOuter, filter: None, .. } => {
            already_limited(left, fetch)
        }
        _ => false,
    }
}
