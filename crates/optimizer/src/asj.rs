//! Augmentation self-join (ASJ) elimination — §5 and §6.3 of the paper.
//!
//! The custom-fields extension pattern joins a view back to its own base
//! table on the key to expose un-projected fields (Fig. 8/9). Unlike a UAJ,
//! an ASJ can be removed *even when its fields are used*: references to the
//! augmenter's columns are **re-wired** to the same table instance inside
//! the anchor, threading the needed base columns up through the anchor's
//! operators (projections are widened; joins are wrapped to keep layouts
//! stable; UNION ALL anchors thread every child — Fig. 13a).
//!
//! Validity conditions implemented here:
//!
//! * the augmenter's join columns are a unique key of the augmenter (no
//!   duplication) and are non-nullable in the base table (a NULL key would
//!   make the join NULL-pad while re-wiring would fabricate values);
//! * the anchor's join columns trace to exactly those key columns of a scan
//!   of the same table, through pure column references;
//! * a filtered augmenter (Fig. 10c) requires the filters collected along
//!   the anchor path to *imply* the augmenter predicate — otherwise some
//!   anchor rows would have been NULL-augmented;
//! * an inner-join ASJ additionally requires the anchor path to never
//!   cross the NULL-padded side of an outer join.
//!
//! For augmenter-side UNION ALL, the **case join** (`asj_intent`) unlocks
//! the full recursive matching (Fig. 13b / Fig. 14b); without intent, a
//! shallow heuristic recognizes only simple branch shapes (Fig. 14a).

use crate::ctx::RewriteCtx;
use crate::profile::Capability;
use std::collections::HashMap;
use std::sync::Arc;
use vdm_catalog::TableDef;
use vdm_expr::{predicate, Expr};
use vdm_plan::{transform_up, DeclaredCardinality, JoinKind, LogicalPlan, PlanRef};
use vdm_types::{Result, Value};

/// Runs the ASJ pass bottom-up over the whole plan (nested ASJs collapse
/// inside-out because the driver transforms children first).
pub fn asj_pass(plan: &PlanRef, ctx: &RewriteCtx<'_>) -> Result<PlanRef> {
    transform_up(plan, &mut |node| {
        if let LogicalPlan::Join { left, right, kind, on, filter, declared, asj_intent, .. } =
            node.as_ref()
        {
            if filter.is_none() && !on.is_empty() {
                if let Some(new_plan) =
                    try_asj(&node, left, right, *kind, on, *declared, *asj_intent, ctx)?
                {
                    return Ok(new_plan);
                }
            }
        }
        Ok(node)
    })
}

/// A decomposed simple augmenter: `[Project(pure)] [Filter]* Scan`.
struct SimpleAug {
    table: Arc<TableDef>,
    /// Right output ordinal → scan ordinal (None = computed/literal).
    out_scan: Vec<Option<usize>>,
    /// Conjunction of filters, in scan ordinals.
    pred: Option<Expr>,
}

fn decompose_simple(plan: &PlanRef) -> Option<SimpleAug> {
    match plan.as_ref() {
        LogicalPlan::Scan { table, schema, .. } => Some(SimpleAug {
            table: Arc::clone(table),
            out_scan: (0..schema.len()).map(Some).collect(),
            pred: None,
        }),
        LogicalPlan::Filter { input, predicate } => {
            let inner = decompose_simple(input)?;
            // Translate the filter to scan ordinals (it sits above the same
            // layout as `inner.out_scan` describes).
            let translated = translate(predicate, &inner.out_scan)?;
            let pred = match inner.pred {
                Some(p) => Some(p.and(translated)),
                None => Some(translated),
            };
            Some(SimpleAug { table: inner.table, out_scan: inner.out_scan, pred })
        }
        LogicalPlan::Project { input, exprs, .. } => {
            let inner = decompose_simple(input)?;
            let out_scan = exprs
                .iter()
                .map(|(e, _)| match e {
                    Expr::Col(i) => inner.out_scan[*i],
                    _ => None,
                })
                .collect();
            Some(SimpleAug { table: inner.table, out_scan, pred: inner.pred })
        }
        _ => None,
    }
}

/// Remaps an expression through an ordinal map, failing on unmapped refs.
fn translate(e: &Expr, map: &[Option<usize>]) -> Option<Expr> {
    let ok = std::cell::Cell::new(true);
    let out = e.transform(&|node| {
        if let Expr::Col(i) = node {
            match map.get(*i).copied().flatten() {
                Some(m) => return Some(Expr::Col(m)),
                None => {
                    ok.set(false);
                    return Some(node.clone());
                }
            }
        }
        None
    });
    if ok.get() {
        Some(out)
    } else {
        None
    }
}

#[allow(clippy::too_many_arguments)]
fn try_asj(
    join: &PlanRef,
    left: &PlanRef,
    right: &PlanRef,
    kind: JoinKind,
    on: &[(usize, usize)],
    declared: Option<DeclaredCardinality>,
    asj_intent: bool,
    ctx: &RewriteCtx<'_>,
) -> Result<Option<PlanRef>> {
    if matches!(right.as_ref(), LogicalPlan::UnionAll { .. }) {
        return try_asj_union(join, left, right, kind, on, declared, asj_intent, ctx);
    }
    let aug = match decompose_simple(right) {
        Some(a) => a,
        None => return Ok(None),
    };
    // Capability gates by shape.
    if aug.pred.is_some() && !ctx.has(Capability::AsjFilteredAugmenter) {
        return Ok(None);
    }
    let anchor_is_scan = matches!(left.as_ref(), LogicalPlan::Scan { .. });
    if anchor_is_scan && !ctx.has(Capability::AsjBasic) {
        return Ok(None);
    }
    if !anchor_is_scan && !ctx.has(Capability::AsjSubquery) {
        return Ok(None);
    }
    // The augmenter must match at most one row per anchor row.
    if !ctx.right_at_most_one(right, on, declared) {
        return Ok(None);
    }
    // Key columns at the scan, non-nullable in the base table.
    let mut key_anchor = Vec::with_capacity(on.len());
    let mut key_scan = Vec::with_capacity(on.len());
    for &(l, r) in on {
        let scan_ord = match aug.out_scan[r] {
            Some(s) => s,
            None => return Ok(None),
        };
        if aug.table.schema.field(scan_ord).nullable {
            return Ok(None);
        }
        key_anchor.push(l);
        key_scan.push(scan_ord);
    }
    // Columns to re-wire: every augmenter output (must all be pure).
    let needed: Vec<usize> = match aug.out_scan.iter().copied().collect::<Option<Vec<_>>>() {
        Some(v) => v,
        None => return Ok(None),
    };
    let spec = ThreadSpec {
        table: aug.table.name.to_ascii_lowercase(),
        outer_ok: kind == JoinKind::LeftOuter,
        through_union: ctx.has(Capability::AsjThroughUnion),
    };
    let out = match thread(left, &key_anchor, &key_scan, &needed, &spec) {
        Some(o) => o,
        None => return Ok(None),
    };
    if kind == JoinKind::Inner && out.nulled {
        return Ok(None);
    }
    // Subsumption (Fig. 10c): the anchor path must imply the augmenter
    // predicate, else some anchor rows should be NULL-augmented.
    if let Some(p) = &aug.pred {
        let path = Expr::conjunction(out.preds.clone());
        if !out.justified && !predicate::implies(&path, p) {
            return Ok(None);
        }
    }
    // Rebuild: anchor columns pass through; augmenter columns re-wired.
    let nl = left.schema().len();
    let join_schema = join.schema();
    let mut exprs = Vec::with_capacity(join_schema.len());
    for i in 0..nl {
        exprs.push((Expr::col(i), join_schema.field(i).name.clone()));
    }
    for (j, scan_ord) in needed.iter().enumerate() {
        let pos = out.appended[scan_ord];
        exprs.push((Expr::col(pos), join_schema.field(nl + j).name.clone()));
    }
    let out_plan = LogicalPlan::project(out.plan, exprs)?;
    vdm_obs::rewrite::fired(
        "asj-elimination",
        join,
        Some(&out_plan),
        &format!(
            "§5: augmenter self-join on {}'s unique non-nullable key; \
             references re-wired to the anchor-side instance",
            aug.table.name
        ),
    );
    Ok(Some(out_plan))
}

/// Threading spec shared down the anchor recursion.
struct ThreadSpec {
    /// Target table name (lowercase).
    table: String,
    /// The ASJ join is a left-outer join: descending into the NULL-padded
    /// side of an outer join inside the anchor is acceptable.
    outer_ok: bool,
    /// The profile may thread through UNION ALL anchors (Fig. 13a).
    through_union: bool,
}

/// Result of threading base columns up through an anchor subtree.
struct ThreadOut {
    /// The rebuilt anchor: original columns in place, requested scan
    /// columns appended (positions in `appended`).
    plan: PlanRef,
    /// Scan ordinal → output position in `plan`.
    appended: HashMap<usize, usize>,
    /// Current-output ordinal → scan ordinal, for pure passthrough columns.
    scan_map: HashMap<usize, usize>,
    /// Filter conjuncts observed on the path, in scan ordinals.
    preds: Vec<Expr>,
    /// Subsumption already proven (per-child, at a UNION ALL).
    justified: bool,
    /// Path crosses the NULL-padded side of an outer join.
    nulled: bool,
}

/// Recursively verifies that `key_anchor` (ordinals of `plan`'s output)
/// trace to `key_scan` of a scan of `spec.table`, and rebuilds `plan` with
/// the `needed` scan columns appended to its output.
fn thread(
    plan: &PlanRef,
    key_anchor: &[usize],
    key_scan: &[usize],
    needed: &[usize],
    spec: &ThreadSpec,
) -> Option<ThreadOut> {
    match plan.as_ref() {
        LogicalPlan::Scan { table, schema, .. } => {
            if table.name.to_ascii_lowercase() != spec.table {
                return None;
            }
            // At the scan, anchor ordinals are scan ordinals.
            if key_anchor != key_scan {
                return None;
            }
            let appended = needed.iter().map(|&s| (s, s)).collect();
            let scan_map = (0..schema.len()).map(|i| (i, i)).collect();
            Some(ThreadOut {
                plan: plan.clone(),
                appended,
                scan_map,
                preds: Vec::new(),
                justified: false,
                nulled: false,
            })
        }
        LogicalPlan::Project { input, exprs, .. } => {
            // Key ordinals must be pure column references.
            let child_keys: Vec<usize> = key_anchor
                .iter()
                .map(|&k| match &exprs[k].0 {
                    Expr::Col(i) => Some(*i),
                    _ => None,
                })
                .collect::<Option<_>>()?;
            let inner = thread(input, &child_keys, key_scan, needed, spec)?;
            let mut new_exprs: Vec<(Expr, String)> = exprs.clone();
            let base = new_exprs.len();
            let mut appended = HashMap::new();
            for (i, &s) in needed.iter().enumerate() {
                new_exprs.push((Expr::col(inner.appended[&s]), format!("__asj_{s}")));
                appended.insert(s, base + i);
            }
            let mut scan_map = HashMap::new();
            for (out_idx, (e, _)) in exprs.iter().enumerate() {
                if let Expr::Col(i) = e {
                    if let Some(&s) = inner.scan_map.get(i) {
                        scan_map.insert(out_idx, s);
                    }
                }
            }
            for (i, &s) in needed.iter().enumerate() {
                scan_map.insert(base + i, s);
            }
            Some(ThreadOut {
                plan: LogicalPlan::project(inner.plan, new_exprs).ok()?,
                appended,
                scan_map,
                preds: inner.preds,
                justified: inner.justified,
                nulled: inner.nulled,
            })
        }
        LogicalPlan::Filter { input, predicate } => {
            let inner = thread(input, key_anchor, key_scan, needed, spec)?;
            let mut preds = inner.preds;
            for conj in predicate::split_conjunction(predicate) {
                let map: Vec<Option<usize>> =
                    (0..input.schema().len()).map(|i| inner.scan_map.get(&i).copied()).collect();
                if let Some(t) = translate(conj, &map) {
                    preds.push(t);
                }
            }
            Some(ThreadOut {
                plan: LogicalPlan::filter(inner.plan, predicate.clone()).ok()?,
                appended: inner.appended,
                scan_map: inner.scan_map,
                preds,
                justified: inner.justified,
                nulled: inner.nulled,
            })
        }
        LogicalPlan::Sort { input, keys } => {
            let inner = thread(input, key_anchor, key_scan, needed, spec)?;
            Some(ThreadOut {
                plan: LogicalPlan::sort(inner.plan, keys.clone()).ok()?,
                appended: inner.appended,
                scan_map: inner.scan_map,
                preds: inner.preds,
                justified: inner.justified,
                nulled: inner.nulled,
            })
        }
        LogicalPlan::Limit { input, skip, fetch } => {
            let inner = thread(input, key_anchor, key_scan, needed, spec)?;
            Some(ThreadOut {
                plan: LogicalPlan::limit(inner.plan, *skip, *fetch),
                appended: inner.appended,
                scan_map: inner.scan_map,
                preds: inner.preds,
                justified: inner.justified,
                nulled: inner.nulled,
            })
        }
        LogicalPlan::Join { left, right, kind, on, filter, declared, asj_intent, .. } => {
            let nl = left.schema().len();
            let all_left = key_anchor.iter().all(|&k| k < nl);
            let all_right = key_anchor.iter().all(|&k| k >= nl);
            if all_left {
                let inner = thread(left, key_anchor, key_scan, needed, spec)?;
                // A Scan anchor appends nothing (its columns already exist);
                // deeper anchors widen by the threaded columns.
                let new_nl = inner.plan.schema().len();
                let widen = new_nl - nl;
                // Residual filter ordinals: right refs shift by the widening.
                let new_filter = filter
                    .as_ref()
                    .map(|f| f.remap_columns(&|i| if i < nl { i } else { i + widen }));
                let new_join = LogicalPlan::join(
                    inner.plan,
                    right.clone(),
                    *kind,
                    on.clone(),
                    new_filter,
                    *declared,
                    *asj_intent,
                )
                .ok()?;
                // Restore layout: [left₀.., right.., appended..].
                let nr = right.schema().len();
                let js = new_join.schema();
                let mut exprs: Vec<(Expr, String)> = Vec::with_capacity(nl + nr + needed.len());
                for i in 0..nl {
                    exprs.push((Expr::col(i), js.field(i).name.clone()));
                }
                for i in 0..nr {
                    exprs.push((Expr::col(new_nl + i), js.field(new_nl + i).name.clone()));
                }
                let mut appended = HashMap::new();
                for (j, &s) in needed.iter().enumerate() {
                    let pos_in_left = inner.appended[&s];
                    exprs.push((Expr::col(pos_in_left), format!("__asj_{s}")));
                    appended.insert(s, nl + nr + j);
                }
                let mut scan_map = HashMap::new();
                for (i, s) in &inner.scan_map {
                    if *i < nl {
                        scan_map.insert(*i, *s);
                    }
                }
                for (j, &s) in needed.iter().enumerate() {
                    scan_map.insert(nl + nr + j, s);
                }
                Some(ThreadOut {
                    plan: LogicalPlan::project(new_join, exprs).ok()?,
                    appended,
                    scan_map,
                    preds: inner.preds,
                    justified: inner.justified,
                    nulled: inner.nulled,
                })
            } else if all_right {
                if *kind == JoinKind::LeftOuter && !spec.outer_ok {
                    return None;
                }
                let child_keys: Vec<usize> = key_anchor.iter().map(|&k| k - nl).collect();
                let inner = thread(right, &child_keys, key_scan, needed, spec)?;
                let new_join = LogicalPlan::join(
                    left.clone(),
                    inner.plan,
                    *kind,
                    on.clone(),
                    filter.clone(),
                    *declared,
                    *asj_intent,
                )
                .ok()?;
                // Appended columns land at the very end already.
                let mut appended = HashMap::new();
                for (&s, &p) in &inner.appended {
                    appended.insert(s, nl + p);
                }
                let mut scan_map = HashMap::new();
                for (i, s) in &inner.scan_map {
                    scan_map.insert(nl + i, *s);
                }
                Some(ThreadOut {
                    plan: new_join,
                    appended,
                    scan_map,
                    preds: inner.preds,
                    justified: inner.justified,
                    nulled: inner.nulled || *kind == JoinKind::LeftOuter,
                })
            } else {
                None
            }
        }
        LogicalPlan::UnionAll { inputs, .. } => {
            if !spec.through_union {
                return None;
            }
            let width = plan.schema().len();
            let mut new_children = Vec::with_capacity(inputs.len());
            let mut nulled = false;
            for child in inputs {
                let inner = thread(child, key_anchor, key_scan, needed, spec)?;
                nulled |= inner.nulled;
                // Per-child subsumption is checked by the caller via
                // `justified`; collect per-child preds into justification
                // only when the caller supplied a predicate — the caller
                // cannot see per-child preds, so we conservatively mark
                // unjustified and let the caller handle the no-predicate
                // case. To keep Fig. 10(c)-style filtered augmenters
                // working through unions, each child's preds must already
                // imply the augmenter predicate — delegated via
                // `thread_union_pred_check` below by the ASJ caller.
                let cs = child.schema();
                let mut exprs: Vec<(Expr, String)> =
                    (0..width).map(|i| (Expr::col(i), cs.field(i).name.clone())).collect();
                for &s in needed {
                    exprs.push((Expr::col(inner.appended[&s]), format!("__asj_{s}")));
                }
                new_children.push((LogicalPlan::project(inner.plan, exprs).ok()?, inner.preds));
            }
            let plans: Vec<PlanRef> = new_children.iter().map(|(p, _)| p.clone()).collect();
            let union = LogicalPlan::union_all(plans).ok()?;
            let mut appended = HashMap::new();
            for (j, &s) in needed.iter().enumerate() {
                appended.insert(s, width + j);
            }
            // Per-child predicate collections: expose the weakest common
            // justification by keeping only conjuncts present in EVERY
            // child (a predicate that holds for all union rows).
            let mut common: Vec<Expr> =
                new_children.first().map(|(_, p)| p.clone()).unwrap_or_default();
            for (_, preds) in &new_children[1..] {
                common.retain(|c| preds.contains(c));
            }
            Some(ThreadOut {
                plan: union,
                appended,
                scan_map: HashMap::new(),
                preds: common,
                justified: false,
                nulled,
            })
        }
        // Aggregates/Distinct/Values block re-wiring.
        _ => None,
    }
}

/// One branch of an augmenter-side UNION ALL (the Fig. 13b pattern),
/// fully resolved against its base table.
struct BranchInfo {
    bid: Value,
    table: String,
    /// Scan ordinals of the (non-bid) join keys.
    key_scan: Vec<usize>,
    /// Scan ordinals of the augmenter outputs to re-wire (non-bid, in
    /// right-output order).
    needed_scan: Vec<usize>,
    /// Branch filter in scan ordinals.
    pred: Option<Expr>,
}

/// Case-join ASJ: the augmenter is a branch-id UNION ALL; the anchor
/// contains (possibly under projections/filters) a matching UNION ALL whose
/// children pair with the augmenter branches by branch-id constant.
#[allow(clippy::too_many_arguments)]
fn try_asj_union(
    join: &PlanRef,
    left: &PlanRef,
    right: &PlanRef,
    kind: JoinKind,
    on: &[(usize, usize)],
    declared: Option<DeclaredCardinality>,
    asj_intent: bool,
    ctx: &RewriteCtx<'_>,
) -> Result<Option<PlanRef>> {
    let full_power = asj_intent && ctx.has(Capability::CaseJoin);
    let heuristic = ctx.has(Capability::AsjUnionHeuristic);
    if !full_power && !heuristic {
        return Ok(None);
    }
    if kind != JoinKind::LeftOuter {
        return Ok(None);
    }
    let aug_children = match right.as_ref() {
        LogicalPlan::UnionAll { inputs, .. } => inputs,
        _ => return Ok(None),
    };
    if !ctx.right_at_most_one(right, on, declared) {
        return Ok(None);
    }
    // Identify the branch-id pair: the join pair whose augmenter column is
    // a distinct constant in every augmenter child.
    let nr_width = right.schema().len();
    let mut bid_pair: Option<(usize, usize)> = None;
    for &(l, r) in on {
        let consts: Vec<Option<Value>> =
            aug_children.iter().map(|c| branch_constant(c, r)).collect();
        if consts.iter().all(|c| c.is_some()) {
            let vals: Vec<Value> = consts.into_iter().flatten().collect();
            let distinct =
                vals.iter().enumerate().all(|(i, v)| vals.iter().skip(i + 1).all(|w| w != v));
            if distinct {
                bid_pair = Some((l, r));
                break;
            }
        }
    }
    let (bid_l, bid_r) = match bid_pair {
        Some(p) => p,
        None => return Ok(None),
    };
    let key_pairs: Vec<(usize, usize)> =
        on.iter().copied().filter(|&p| p != (bid_l, bid_r)).collect();
    if key_pairs.is_empty() {
        return Ok(None);
    }
    let needed_out: Vec<usize> = (0..nr_width).filter(|&j| j != bid_r).collect();
    // Resolve each augmenter branch against its base table.
    let mut branches = Vec::with_capacity(aug_children.len());
    for child in aug_children {
        let bid = branch_constant(child, bid_r).expect("checked above");
        let aug = match decompose_simple(child) {
            Some(a) => a,
            None => return Ok(None),
        };
        if aug.pred.is_some() && !ctx.has(Capability::AsjFilteredAugmenter) {
            return Ok(None);
        }
        let mut key_scan = Vec::with_capacity(key_pairs.len());
        for &(_, r) in &key_pairs {
            let scan_ord = match aug.out_scan[r] {
                Some(s) => s,
                None => return Ok(None),
            };
            if aug.table.schema.field(scan_ord).nullable {
                return Ok(None);
            }
            key_scan.push(scan_ord);
        }
        let needed_scan: Vec<usize> =
            match needed_out.iter().map(|&j| aug.out_scan[j]).collect::<Option<Vec<_>>>() {
                Some(v) => v,
                None => return Ok(None),
            };
        branches.push(BranchInfo {
            bid,
            table: aug.table.name.to_ascii_lowercase(),
            key_scan,
            needed_scan,
            pred: aug.pred,
        });
    }
    let key_anchor: Vec<usize> = key_pairs.iter().map(|&(l, _)| l).collect();
    let through_union = ctx.has(Capability::AsjThroughUnion);
    let out = match thread_case(left, bid_l, &key_anchor, &branches, full_power, through_union) {
        Some(o) => o,
        None => return Ok(None),
    };
    // Final projection replicating the join's output layout: anchor columns
    // pass through; the augmenter's bid re-wires to the anchor's own bid;
    // the other augmenter columns re-wire to the threaded positions.
    let width = left.schema().len();
    let js = join.schema();
    let mut exprs: Vec<(Expr, String)> =
        (0..width).map(|i| (Expr::col(i), js.field(i).name.clone())).collect();
    for j in 0..nr_width {
        let name = js.field(width + j).name.clone();
        if j == bid_r {
            exprs.push((Expr::col(bid_l), name));
        } else {
            let pos = needed_out.iter().position(|&x| x == j).expect("non-bid col");
            exprs.push((Expr::col(out.appended_at[pos]), name));
        }
    }
    let out_plan = LogicalPlan::project(out.plan, exprs)?;
    vdm_obs::rewrite::fired(
        "case-join",
        join,
        Some(&out_plan),
        &format!(
            "§6.3: UNION ALL augmenter ({} branch(es)) paired to anchor \
             branches by branch-id constant; per-branch keys unique",
            branches.len()
        ),
    );
    Ok(Some(out_plan))
}

/// Result of threading a case join into an anchor subtree.
struct CaseThread {
    plan: PlanRef,
    /// Output position of each re-wired augmenter column (in
    /// `needed_out` order).
    appended_at: Vec<usize>,
}

/// Descends through pure wrappers to the anchor UNION ALL, pairs its
/// children to the augmenter branches by branch-id constant, and threads
/// each child's own table instance.
fn thread_case(
    plan: &PlanRef,
    bid_ord: usize,
    key_ords: &[usize],
    branches: &[BranchInfo],
    full_power: bool,
    through_union: bool,
) -> Option<CaseThread> {
    match plan.as_ref() {
        LogicalPlan::Project { input, exprs, .. } => {
            let map = |o: usize| -> Option<usize> {
                match &exprs[o].0 {
                    Expr::Col(i) => Some(*i),
                    _ => None,
                }
            };
            let inner_bid = map(bid_ord)?;
            let inner_keys: Vec<usize> = key_ords.iter().map(|&k| map(k)).collect::<Option<_>>()?;
            let inner =
                thread_case(input, inner_bid, &inner_keys, branches, full_power, through_union)?;
            let mut new_exprs = exprs.clone();
            let base = new_exprs.len();
            let mut appended_at = Vec::with_capacity(inner.appended_at.len());
            for (i, &p) in inner.appended_at.iter().enumerate() {
                new_exprs.push((Expr::col(p), format!("__case_{i}")));
                appended_at.push(base + i);
            }
            Some(CaseThread {
                plan: LogicalPlan::project(inner.plan, new_exprs).ok()?,
                appended_at,
            })
        }
        LogicalPlan::Filter { input, predicate } => {
            let inner = thread_case(input, bid_ord, key_ords, branches, full_power, through_union)?;
            Some(CaseThread {
                plan: LogicalPlan::filter(inner.plan, predicate.clone()).ok()?,
                appended_at: inner.appended_at,
            })
        }
        LogicalPlan::Sort { input, keys } => {
            let inner = thread_case(input, bid_ord, key_ords, branches, full_power, through_union)?;
            Some(CaseThread {
                plan: LogicalPlan::sort(inner.plan, keys.clone()).ok()?,
                appended_at: inner.appended_at,
            })
        }
        LogicalPlan::Limit { input, skip, fetch } => {
            let inner = thread_case(input, bid_ord, key_ords, branches, full_power, through_union)?;
            Some(CaseThread {
                plan: LogicalPlan::limit(inner.plan, *skip, *fetch),
                appended_at: inner.appended_at,
            })
        }
        LogicalPlan::UnionAll { inputs, .. } => {
            if inputs.len() != branches.len() {
                return None;
            }
            let width = plan.schema().len();
            let mut new_children = Vec::with_capacity(inputs.len());
            let mut used = vec![false; branches.len()];
            for child in inputs {
                if !full_power && !is_shallow_branch(child) {
                    // Heuristic regime (Fig. 14a): complex anchor branches
                    // defeat recognition.
                    return None;
                }
                let abid = branch_constant(child, bid_ord)?;
                let idx = branches.iter().position(|b| b.bid == abid)?;
                if std::mem::replace(&mut used[idx], true) {
                    return None;
                }
                let branch = &branches[idx];
                let spec =
                    ThreadSpec { table: branch.table.clone(), outer_ok: true, through_union };
                let out = thread(child, key_ords, &branch.key_scan, &branch.needed_scan, &spec)?;
                if let Some(p) = &branch.pred {
                    let path = Expr::conjunction(out.preds.clone());
                    if !out.justified && !predicate::implies(&path, p) {
                        return None;
                    }
                }
                let cs = child.schema();
                let mut exprs: Vec<(Expr, String)> =
                    (0..width).map(|i| (Expr::col(i), cs.field(i).name.clone())).collect();
                for (i, &s) in branch.needed_scan.iter().enumerate() {
                    exprs.push((Expr::col(out.appended[&s]), format!("__case_{i}")));
                }
                new_children.push(LogicalPlan::project(out.plan, exprs).ok()?);
            }
            let union = LogicalPlan::union_all(new_children).ok()?;
            let appended_at = (0..branches[0].needed_scan.len()).map(|i| width + i).collect();
            Some(CaseThread { plan: union, appended_at })
        }
        _ => None,
    }
}

/// The constant a plan emits in output column `b`, when provable.
fn branch_constant(plan: &PlanRef, b: usize) -> Option<Value> {
    match plan.as_ref() {
        LogicalPlan::Project { exprs, .. } => match &exprs.get(b)?.0 {
            Expr::Lit(v) if !v.is_null() => Some(v.clone()),
            _ => None,
        },
        LogicalPlan::Filter { input, .. }
        | LogicalPlan::Sort { input, .. }
        | LogicalPlan::Limit { input, .. } => branch_constant(input, b),
        _ => None,
    }
}

/// Shallow shapes the union heuristic recognizes:
/// `Project(literals + pure cols) over [Filter] Scan`.
fn is_shallow_branch(plan: &PlanRef) -> bool {
    match plan.as_ref() {
        LogicalPlan::Project { input, exprs, .. } => {
            exprs.iter().all(|(e, _)| matches!(e, Expr::Col(_) | Expr::Lit(_)))
                && matches!(input.as_ref(), LogicalPlan::Scan { .. } | LogicalPlan::Filter { .. })
                && match input.as_ref() {
                    LogicalPlan::Filter { input: inner, .. } => {
                        matches!(inner.as_ref(), LogicalPlan::Scan { .. })
                    }
                    _ => true,
                }
        }
        _ => false,
    }
}
