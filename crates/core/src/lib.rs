//! `vdm-core`: the database facade.
//!
//! [`Database`] wires the whole stack together — catalog, view registry,
//! expression-macro registry, columnar storage, SQL front end, optimizer
//! (with a selectable capability [`Profile`]), and executor — behind a
//! `db.execute(sql)` API.
//!
//! ```
//! use vdm_core::Database;
//! let mut db = Database::hana();
//! db.execute("create table t (k bigint primary key, v text)").unwrap();
//! db.execute("insert into t values (1, 'hello')").unwrap();
//! let batch = db.query("select v from t where k = 1").unwrap();
//! assert_eq!(batch.row(0)[0], vdm_types::Value::str("hello"));
//! ```

use std::sync::Arc;
use std::time::Instant;
use vdm_cache::{CacheMode, CachedView, ViewCache};
use vdm_catalog::Catalog;
pub use vdm_exec::ParallelConfig;
use vdm_exec::{Metrics, NodeIndex, QueryProfile};
use vdm_obs::MetricsRegistry;
use vdm_optimizer::{Optimizer, Profile, Trace};
use vdm_plan::{plan_stats, PlanRef, ViewRegistry};
use vdm_sql::{Binder, MacroRegistry, Statement};
use vdm_storage::{Batch, StorageEngine};
use vdm_types::{Result, VdmError};

/// Outcome of one executed statement.
#[derive(Debug)]
pub enum StatementResult {
    /// SELECT results.
    Rows(Batch),
    /// DDL acknowledgement with the object name.
    Created(String),
    /// Rows inserted.
    Inserted(usize),
    /// EXPLAIN output.
    Explained(String),
}

impl StatementResult {
    /// Unwraps SELECT rows.
    pub fn rows(self) -> Result<Batch> {
        match self {
            StatementResult::Rows(b) => Ok(b),
            other => Err(VdmError::Exec(format!("statement produced {other:?}, not rows"))),
        }
    }
}

/// The assembled database.
pub struct Database {
    catalog: Catalog,
    views: ViewRegistry,
    macros: MacroRegistry,
    engine: StorageEngine,
    optimizer: Optimizer,
    cache: ViewCache,
    parallel: ParallelConfig,
}

impl Database {
    /// Database with the given optimizer profile.
    pub fn new(profile: Profile) -> Database {
        Database {
            catalog: Catalog::new(),
            views: ViewRegistry::new(),
            macros: MacroRegistry::new(),
            engine: StorageEngine::new(),
            optimizer: Optimizer::new(profile),
            cache: ViewCache::new(),
            parallel: ParallelConfig::default(),
        }
    }

    /// Database with every optimizer capability (the paper's HANA column).
    pub fn hana() -> Database {
        Database::new(Profile::hana())
    }

    /// Swaps the optimizer profile (e.g. to compare systems on one dataset).
    pub fn set_profile(&mut self, profile: Profile) {
        self.optimizer = Optimizer::new(profile);
    }

    /// Sets the executor's worker-pool configuration. The default uses all
    /// available cores; `threads: 1` takes the exact legacy serial path.
    pub fn set_parallelism(&mut self, config: ParallelConfig) {
        self.parallel = config;
    }

    /// The active executor configuration.
    pub fn parallelism(&self) -> ParallelConfig {
        self.parallel
    }

    /// The active optimizer.
    pub fn optimizer(&self) -> &Optimizer {
        &self.optimizer
    }

    /// Catalog access.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Mutable catalog access (for generators).
    pub fn catalog_mut(&mut self) -> &mut Catalog {
        &mut self.catalog
    }

    /// Split borrow for data generators that register schema and load data
    /// in one call (`gen.build(catalog, engine)`).
    pub fn catalog_and_engine(&mut self) -> (&mut Catalog, &StorageEngine) {
        (&mut self.catalog, &self.engine)
    }

    /// Storage access.
    pub fn engine(&self) -> &StorageEngine {
        &self.engine
    }

    /// Plan-view registry access (for the VDM layer).
    pub fn views_mut(&mut self) -> &mut ViewRegistry {
        &mut self.views
    }

    /// Registers a plan-backed view (VDM layer entry point).
    pub fn register_view(&mut self, name: &str, plan: PlanRef) {
        self.views.register(name, plan);
    }

    /// Creates a cached (materialized) view over a SELECT — the SCV/DCV
    /// feature of §3. The optimized plan is materialized immediately.
    pub fn create_cached_view(
        &mut self,
        name: &str,
        sql: &str,
        mode: CacheMode,
    ) -> Result<Arc<CachedView>> {
        let plan = self.optimized_plan(sql)?;
        self.cache.register(name, plan, mode, &self.engine)
    }

    /// Looks up a cached view.
    pub fn cached_view(&self, name: &str) -> Option<Arc<CachedView>> {
        self.cache.get(name)
    }

    /// Reads a cached view (SCV: last refresh; DCV: maintained first).
    pub fn read_cached(&self, name: &str) -> Result<Batch> {
        let view = self
            .cache
            .get(name)
            .ok_or_else(|| VdmError::Catalog(format!("unknown cached view {name:?}")))?;
        view.read(&self.engine)
    }

    /// Refreshes every static cached view (the periodic refresh tick).
    pub fn refresh_cached_views(&self) -> Result<usize> {
        self.cache.refresh_all_static(&self.engine)
    }

    /// Executes a single statement.
    pub fn execute(&mut self, sql: &str) -> Result<StatementResult> {
        let mut results = self.execute_script(sql)?;
        results.pop().ok_or_else(|| VdmError::Exec("no statement executed".into()))
    }

    /// Executes a `;`-separated script, returning one result per statement.
    pub fn execute_script(&mut self, sql: &str) -> Result<Vec<StatementResult>> {
        let stmts = vdm_sql::parse(sql)?;
        stmts.iter().map(|s| self.run_statement(s)).collect()
    }

    /// Runs a SELECT and returns its rows.
    pub fn query(&mut self, sql: &str) -> Result<Batch> {
        self.execute(sql)?.rows()
    }

    /// Binds a SELECT to its *unoptimized* logical plan.
    pub fn plan(&self, sql: &str) -> Result<PlanRef> {
        let stmt = vdm_sql::parser::parse_one(sql)?;
        let Statement::Select(sel) = stmt else {
            return Err(VdmError::Bind("plan() expects a SELECT".into()));
        };
        Binder::new(&self.catalog, &self.views, &self.macros).bind_select(&sel)
    }

    /// Binds and optimizes a SELECT.
    pub fn optimized_plan(&self, sql: &str) -> Result<PlanRef> {
        self.optimizer.optimize(&self.plan(sql)?)
    }

    /// Optimizes an externally built plan with the active profile.
    pub fn optimize(&self, plan: &PlanRef) -> Result<PlanRef> {
        self.optimizer.optimize(plan)
    }

    /// Executes a prebuilt logical plan (optimizing it first).
    pub fn execute_plan(&self, plan: &PlanRef) -> Result<(Batch, Metrics)> {
        let optimized = self.optimizer.optimize(plan)?;
        vdm_exec::execute_parallel_at(
            &optimized,
            &self.engine,
            self.engine.snapshot(),
            self.parallel,
        )
    }

    /// Executes a prebuilt plan WITHOUT optimization (baseline measurement).
    pub fn execute_plan_unoptimized(&self, plan: &PlanRef) -> Result<(Batch, Metrics)> {
        vdm_exec::execute_parallel_at(plan, &self.engine, self.engine.snapshot(), self.parallel)
    }

    /// EXPLAIN text for a SELECT: both the bound and the optimized plan,
    /// with operator-count summaries and the optimizer's pass trace.
    pub fn explain(&self, sql: &str) -> Result<String> {
        let plan = self.plan(sql)?;
        let (optimized, trace) = self.optimizer.optimize_traced(&plan)?;
        let before = plan_stats(&plan);
        let after = plan_stats(&optimized);
        Ok(format!(
            "== bound plan ({} tables, {} joins) ==\n{}\n== optimized plan ({} tables, {} joins) ==\n{}\n== optimizer trace ==\n{}",
            before.table_instances,
            before.joins,
            vdm_plan::explain(&plan),
            after.table_instances,
            after.joins,
            vdm_plan::explain(&optimized),
            trace.render(),
        ))
    }

    /// EXPLAIN ANALYZE for a SELECT: optimizes, executes with per-operator
    /// profiling, and renders the optimized plan annotated with runtime
    /// stats, the structured rewrite trace, and an execution summary.
    pub fn explain_analyze(&self, sql: &str) -> Result<String> {
        let plan = self.plan(sql)?;
        self.explain_analyze_plan(&plan)
    }

    /// [`Database::explain_analyze`] over a prebuilt (unoptimized) plan.
    pub fn explain_analyze_plan(&self, plan: &PlanRef) -> Result<String> {
        let (optimized, trace) = self.optimizer.optimize_traced(plan)?;
        let index = NodeIndex::new(&optimized);
        let start = Instant::now();
        let (batch, metrics, profile) = vdm_exec::execute_profiled_at(
            &optimized,
            &self.engine,
            self.engine.snapshot(),
            self.parallel,
        )?;
        let elapsed = start.elapsed();
        record_query(&metrics, &trace, elapsed);
        let annotated = render_analyzed(&optimized, &index, &profile);
        Ok(format!(
            "== EXPLAIN ANALYZE ({} thread(s)) ==\n{}\n{}== rewrite trace ==\n{}== execution summary ==\n{} row(s) returned, elapsed time={}\nrows scanned: {}, join probe rows: {}, rows joined: {}, operators: {}\n",
            self.parallel.threads.max(1),
            trace.render_opt_stats(),
            annotated,
            trace.render_events(),
            batch.num_rows(),
            fmt_nanos(elapsed.as_nanos() as u64),
            metrics.rows_scanned,
            metrics.join_probe_rows,
            metrics.join_output_rows,
            metrics.operators,
        ))
    }

    /// The process-wide metrics registry (JSON / Prometheus exporters).
    pub fn metrics(&self) -> &'static MetricsRegistry {
        MetricsRegistry::global()
    }

    fn run_statement(&mut self, stmt: &Statement) -> Result<StatementResult> {
        match stmt {
            Statement::Select(sel) => {
                let binder = Binder::new(&self.catalog, &self.views, &self.macros);
                let plan = binder.bind_select(sel)?;
                let (optimized, trace) = self.optimizer.optimize_traced(&plan)?;
                let start = Instant::now();
                let (batch, metrics) = vdm_exec::execute_parallel_at(
                    &optimized,
                    &self.engine,
                    self.engine.snapshot(),
                    self.parallel,
                )?;
                record_query(&metrics, &trace, start.elapsed());
                Ok(StatementResult::Rows(batch))
            }
            Statement::CreateTable(ct) => {
                let binder = Binder::new(&self.catalog, &self.views, &self.macros);
                let def = binder.table_def(ct)?;
                let arc = self.catalog.create_table(def)?;
                self.engine.create_table(Arc::clone(&arc))?;
                Ok(StatementResult::Created(ct.name.clone()))
            }
            Statement::CreateView { name, or_replace, query, macros } => {
                let (plan, defs) = {
                    let binder = Binder::new(&self.catalog, &self.views, &self.macros);
                    let plan = binder.bind_select(query)?;
                    let defs = macros
                        .iter()
                        .map(|m| binder.bind_macro(m, &plan.schema()))
                        .collect::<Result<Vec<_>>>()?;
                    (plan, defs)
                };
                // Views are registered as plans (inlined at bind time).
                if *or_replace {
                    self.views.register(name, plan);
                } else {
                    self.views.register_new(name, plan)?;
                }
                for def in defs {
                    self.macros.insert(def.name.to_ascii_lowercase(), def);
                }
                Ok(StatementResult::Created(name.clone()))
            }
            Statement::Insert { table, columns, rows } => {
                let values = {
                    let binder = Binder::new(&self.catalog, &self.views, &self.macros);
                    let def = self.catalog.table_or_err(table)?;
                    binder.insert_rows(&def, columns, rows)?
                };
                let n = self.engine.insert(table, values)?;
                Ok(StatementResult::Inserted(n))
            }
            Statement::Explain(inner) => match inner.as_ref() {
                Statement::Select(sel) => {
                    let binder = Binder::new(&self.catalog, &self.views, &self.macros);
                    let plan = binder.bind_select(sel)?;
                    let optimized = self.optimizer.optimize(&plan)?;
                    let before = plan_stats(&plan);
                    let after = plan_stats(&optimized);
                    Ok(StatementResult::Explained(format!(
                        "== bound plan ({} tables, {} joins) ==\n{}\n== optimized plan ({} tables, {} joins) ==\n{}",
                        before.table_instances,
                        before.joins,
                        vdm_plan::explain(&plan),
                        after.table_instances,
                        after.joins,
                        vdm_plan::explain(&optimized),
                    )))
                }
                _ => Err(VdmError::Unsupported("EXPLAIN supports SELECT only".into())),
            },
            Statement::ExplainAnalyze(inner) => match inner.as_ref() {
                Statement::Select(sel) => {
                    let plan = {
                        let binder = Binder::new(&self.catalog, &self.views, &self.macros);
                        binder.bind_select(sel)?
                    };
                    Ok(StatementResult::Explained(self.explain_analyze_plan(&plan)?))
                }
                _ => Err(VdmError::Unsupported("EXPLAIN ANALYZE supports SELECT only".into())),
            },
        }
    }
}

/// Renders `plan` with one `[#id rows=... time=...]` annotation per node,
/// deriving each operator's input rows from its children's recorded output.
fn render_analyzed(plan: &PlanRef, index: &NodeIndex, profile: &QueryProfile) -> String {
    vdm_plan::explain_annotated(plan, &|node| {
        let id = index.id_of(node)?;
        Some(match profile.nodes.get(&id) {
            Some(s) => {
                let children = node.children();
                let mut note = format!("[#{id} rows={}", s.rows_out);
                if !children.is_empty() {
                    let rows_in: u64 = children
                        .iter()
                        .filter_map(|c| index.id_of(c).and_then(|cid| profile.rows_out(cid)))
                        .sum();
                    note.push_str(&format!(" in={rows_in}"));
                }
                note.push_str(&format!(" time={} calls={}", fmt_nanos(s.nanos), s.invocations));
                if s.workers > 1 {
                    note.push_str(&format!(" workers={}", s.workers));
                }
                note.push(']');
                note
            }
            // LIMIT budgets can satisfy a query before some subtrees run.
            None => format!("[#{id} not executed]"),
        })
    })
}

/// Feeds one query's counters into the process-wide metrics registry.
fn record_query(metrics: &Metrics, trace: &Trace, elapsed: std::time::Duration) {
    let reg = MetricsRegistry::global();
    reg.inc("vdm_queries_total", 1);
    reg.observe("vdm_query_seconds", elapsed.as_secs_f64());
    reg.observe("vdm_optimize_seconds", trace.optimize_nanos as f64 / 1e9);
    reg.inc("vdm_rows_scanned_total", metrics.rows_scanned as u64);
    reg.inc("vdm_rows_joined_total", metrics.join_output_rows as u64);
    reg.inc("vdm_morsel_steals_total", metrics.morsel_steals as u64);
    reg.inc("vdm_morsel_size_bytes", metrics.morsel_bytes as u64);
    for (rule, n) in trace.hit_counts() {
        reg.inc(&vdm_obs::registry::label("vdm_rewrite_fired_total", "rule", &rule), n);
    }
}

/// `1234` → `"1.23us"`: human-readable nanosecond counts.
fn fmt_nanos(n: u64) -> String {
    if n >= 1_000_000_000 {
        format!("{:.2}s", n as f64 / 1e9)
    } else if n >= 1_000_000 {
        format!("{:.2}ms", n as f64 / 1e6)
    } else if n >= 1_000 {
        format!("{:.2}us", n as f64 / 1e3)
    } else {
        format!("{n}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vdm_types::Value;

    fn db() -> Database {
        let mut db = Database::hana();
        db.execute_script(
            "create table customer (c_custkey bigint primary key, c_name text not null);
             create table orders (o_orderkey bigint primary key, o_custkey bigint not null,
                                  o_total decimal(10,2) not null);
             insert into customer values (1, 'alice'), (2, 'bob');
             insert into orders values (10, 1, 5.00), (11, 1, 2.50), (12, 2, 9.99);",
        )
        .unwrap();
        db
    }

    #[test]
    fn end_to_end_select() {
        let mut db = db();
        let b = db
            .query("select c_name, count(*) as n from orders o left join customer c on o.o_custkey = c.c_custkey group by c_name order by n desc")
            .unwrap();
        assert_eq!(b.num_rows(), 2);
        assert_eq!(b.row(0), vec![Value::str("alice"), Value::Int(2)]);
    }

    #[test]
    fn uaj_eliminated_under_hana_not_under_system_x() {
        let mut db = db();
        let sql = "select o_orderkey from orders left join customer on o_custkey = c_custkey";
        let hana_plan = db.optimized_plan(sql).unwrap();
        assert_eq!(plan_stats(&hana_plan).joins, 0);
        db.set_profile(Profile::system_x());
        let weak_plan = db.optimized_plan(sql).unwrap();
        assert_eq!(plan_stats(&weak_plan).joins, 1);
        // Both still compute the same answer.
        let a = db.query(sql).unwrap();
        db.set_profile(Profile::hana());
        let b = db.query(sql).unwrap();
        assert_eq!(a.num_rows(), b.num_rows());
    }

    #[test]
    fn explain_shows_both_plans() {
        let mut db = db();
        let text = db
            .explain("select o_orderkey from orders left join customer on o_custkey = c_custkey")
            .unwrap();
        assert!(text.contains("bound plan (2 tables, 1 joins)"), "{text}");
        assert!(text.contains("optimized plan (1 tables, 0 joins)"), "{text}");
        let StatementResult::Explained(e) =
            db.execute("explain select o_orderkey from orders").unwrap()
        else {
            panic!("expected EXPLAIN output")
        };
        assert!(e.contains("Scan orders"));
    }

    #[test]
    fn explain_analyze_reports_rows_trace_and_metrics() {
        let mut db = db();
        let rule = vdm_obs::registry::label("vdm_rewrite_fired_total", "rule", "uaj-removal");
        let before = db.metrics().counter(&rule);
        let text = db
            .explain_analyze(
                "select o_orderkey from orders left join customer on o_custkey = c_custkey",
            )
            .unwrap();
        // The UAJ is removed, leaving a profiled scan/project pipeline.
        assert!(text.contains("rows=3"), "{text}");
        assert!(text.contains("time="), "{text}");
        assert!(text.contains("uaj-removal"), "{text}");
        assert!(db.metrics().counter(&rule) > before, "{text}");
        // The SQL surface goes through the same path.
        let StatementResult::Explained(e) =
            db.execute("explain analyze select o_orderkey from orders").unwrap()
        else {
            panic!("expected EXPLAIN ANALYZE output")
        };
        assert!(e.contains("Scan orders"), "{e}");
        assert!(e.contains("rewrite trace"), "{e}");
    }

    #[test]
    fn views_and_macros_via_sql() {
        let mut db = db();
        db.execute(
            "create view sales as select o_custkey, o_total from orders \
             with expression macros (sum(o_total) / count(*) as avg_order)",
        )
        .unwrap();
        let b = db
            .query("select o_custkey, expression_macro(avg_order) from sales group by o_custkey order by 1")
            .unwrap();
        assert_eq!(b.num_rows(), 2);
        // Duplicate view creation fails; OR REPLACE succeeds.
        assert!(db.execute("create view sales as select 1 from orders").is_err());
        db.execute("create or replace view sales as select o_custkey from orders").unwrap();
    }

    #[test]
    fn constraint_violations_surface() {
        let mut db = db();
        assert!(db.execute("insert into customer values (1, 'dup')").is_err());
        assert!(db.execute("insert into customer values (5, null)").is_err());
        assert!(db.execute("select nope from customer").is_err());
    }

    #[test]
    fn cached_views_through_facade() {
        let mut db = db();
        let scv = db
            .create_cached_view(
                "order_totals",
                "select o_custkey, sum(o_total) as total from orders group by o_custkey",
                CacheMode::Static,
            )
            .unwrap();
        assert_eq!(db.read_cached("order_totals").unwrap().num_rows(), 2);
        db.execute("insert into orders values (13, 2, 1.00)").unwrap();
        // SCV is stale until refreshed.
        assert!(scv.staleness(db.engine()) > 0);
        db.refresh_cached_views().unwrap();
        assert_eq!(scv.staleness(db.engine()), 0);
        // DCV keeps itself current.
        let _dcv = db
            .create_cached_view(
                "order_count",
                "select count(*) as n from orders",
                CacheMode::Dynamic,
            )
            .unwrap();
        db.execute("insert into orders values (14, 2, 2.00)").unwrap();
        let n = db.read_cached("order_count").unwrap();
        assert_eq!(n.row(0)[0], vdm_types::Value::Int(5));
        assert!(db.read_cached("missing").is_err());
    }

    #[test]
    fn like_predicate_end_to_end() {
        let mut db = db();
        let rows =
            db.query("select c_name from customer where c_name like 'al%' order by 1").unwrap();
        assert_eq!(rows.num_rows(), 1);
        assert_eq!(rows.row(0)[0], vdm_types::Value::str("alice"));
        let rows =
            db.query("select c_name from customer where c_name not like '%ob' order by 1").unwrap();
        assert_eq!(rows.num_rows(), 1);
    }

    #[test]
    fn parallelism_config_round_trips_and_agrees_with_serial() {
        let mut db = db();
        let sql = "select c_name, count(*) as n from orders o \
                   left join customer c on o.o_custkey = c.c_custkey \
                   group by c_name order by n desc";
        db.set_parallelism(ParallelConfig { threads: 1, morsel_rows: 2 });
        assert_eq!(db.parallelism().threads, 1);
        let serial = db.query(sql).unwrap();
        db.set_parallelism(ParallelConfig { threads: 4, morsel_rows: 2 });
        let parallel = db.query(sql).unwrap();
        assert_eq!(parallel.to_rows(), serial.to_rows());
    }

    #[test]
    fn execute_plan_paths() {
        let db = db();
        let plan = db.plan("select count(*) from orders").unwrap();
        let (opt_batch, opt_metrics) = db.execute_plan(&plan).unwrap();
        let (raw_batch, _raw_metrics) = db.execute_plan_unoptimized(&plan).unwrap();
        assert_eq!(opt_batch.row(0), raw_batch.row(0));
        assert!(opt_metrics.operators >= 1);
    }
}
