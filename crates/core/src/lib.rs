//! `vdm-core`: the database facade.
//!
//! [`Database`] wires the whole stack together — catalog, view registry,
//! expression-macro registry, columnar storage, SQL front end, optimizer
//! (with a selectable capability [`Profile`]), and executor — behind a
//! `db.execute(sql)` API.
//!
//! ```
//! use vdm_core::Database;
//! let mut db = Database::hana();
//! db.execute("create table t (k bigint primary key, v text)").unwrap();
//! db.execute("insert into t values (1, 'hello')").unwrap();
//! let batch = db.query("select v from t where k = 1").unwrap();
//! assert_eq!(batch.row(0)[0], vdm_types::Value::str("hello"));
//! ```
//!
//! Internally the facade is split for the benefit of `vdm-serve`, the
//! concurrent serving layer:
//!
//! * [`DbState`] — catalog/views/macros/optimizer + a metadata version
//!   counter; the part DDL mutates and bind/optimize reads.
//! * [`PlanCache`] — bounded LRU of optimized parameterized plans keyed by
//!   (canonical statement shape, profile fingerprint, parameter types).
//! * [`QueryEnv`] — the shared SELECT path both `Database` methods and
//!   serve sessions run through.
//!
//! `Database` itself is the single-owner compatibility shim over that
//! machinery: reads (`query`, `explain*`) take `&self`; statement
//! execution (`execute*`) takes `&mut self` because DDL must mutate
//! [`DbState`] — the same operations `vdm-serve` routes through a write
//! lock. `set_profile` / `set_parallelism` stay `&mut self` deliberately:
//! they change the meaning/cost of every in-flight statement, so a shared
//! deployment must serialize them against running queries (which the
//! serving layer's state lock does).

use std::sync::{Arc, Mutex};
pub use vdm_cache::{CacheMode, CachedView, MaintainOutcome, ViewCache};
use vdm_catalog::Catalog;
use vdm_exec::Metrics;
pub use vdm_exec::ParallelConfig;
use vdm_obs::trace as qtrace;
use vdm_obs::{MetricsRegistry, QueryStore, QueryTrace};
pub use vdm_optimizer::Profile;
use vdm_plan::{plan_stats, PlanRef, ViewRegistry};
use vdm_sql::Statement;
use vdm_storage::{Batch, StorageEngine};
use vdm_types::{Result, VdmError};

pub mod feedback;
mod plan_cache;
mod session;
mod state;

pub use feedback::EngineStats;
pub use plan_cache::{CachedPlan, PlanCache, PlanCacheKey, PlanCacheStats};
pub use session::{
    execute_select, explain_analyze_bound, param_types_of, CacheOutcome, QueryEnv, ResolvedPlan,
};
pub use state::DbState;

/// Plans a freshly constructed [`Database`] keeps before evicting
/// (override with [`Database::set_plan_cache_capacity`]).
pub const DEFAULT_PLAN_CACHE_CAPACITY: usize = 256;

/// Outcome of one executed statement.
#[derive(Debug)]
pub enum StatementResult {
    /// SELECT results.
    Rows(Batch),
    /// DDL acknowledgement with the object name.
    Created(String),
    /// DROP acknowledgement with the object name.
    Dropped(String),
    /// Rows inserted.
    Inserted(usize),
    /// EXPLAIN output.
    Explained(String),
}

impl StatementResult {
    /// Unwraps SELECT rows.
    pub fn rows(self) -> Result<Batch> {
        match self {
            StatementResult::Rows(b) => Ok(b),
            other => Err(VdmError::Exec(format!("statement produced {other:?}, not rows"))),
        }
    }
}

/// The assembled database.
pub struct Database {
    state: DbState,
    engine: StorageEngine,
    cache: ViewCache,
    plan_cache: PlanCache,
    parallel: ParallelConfig,
    /// The most recent finished query trace (see [`Database::last_trace`]).
    last_trace: Mutex<Option<QueryTrace>>,
}

/// A [`Database`] decomposed into its shareable pieces — what a serving
/// layer spreads across its own synchronization (state behind a lock,
/// engine/caches internally synchronized).
pub struct DatabaseParts {
    pub state: DbState,
    pub engine: StorageEngine,
    pub views: ViewCache,
    pub plan_cache: PlanCache,
    pub parallel: ParallelConfig,
}

impl Database {
    /// Database with the given optimizer profile.
    pub fn new(profile: Profile) -> Database {
        Database {
            state: DbState::new(profile),
            engine: StorageEngine::new(),
            cache: ViewCache::new(),
            plan_cache: PlanCache::new(DEFAULT_PLAN_CACHE_CAPACITY),
            parallel: ParallelConfig::default(),
            last_trace: Mutex::new(None),
        }
    }

    /// Database with every optimizer capability (the paper's HANA column).
    pub fn hana() -> Database {
        Database::new(Profile::hana())
    }

    /// Rebuilds a `Database` from [`DatabaseParts`] (the inverse of
    /// [`Database::into_parts`]).
    pub fn from_parts(parts: DatabaseParts) -> Database {
        Database {
            state: parts.state,
            engine: parts.engine,
            cache: parts.views,
            plan_cache: parts.plan_cache,
            parallel: parts.parallel,
            last_trace: Mutex::new(None),
        }
    }

    /// Decomposes the database for a serving layer to share.
    pub fn into_parts(self) -> DatabaseParts {
        DatabaseParts {
            state: self.state,
            engine: self.engine,
            views: self.cache,
            plan_cache: self.plan_cache,
            parallel: self.parallel,
        }
    }

    /// Swaps the optimizer profile (e.g. to compare systems on one
    /// dataset). `&mut self` on purpose: the profile changes what every
    /// statement's plan looks like, so it must not race in-flight binds —
    /// concurrent deployments route this through `vdm-serve`, which takes
    /// its state write lock.
    pub fn set_profile(&mut self, profile: Profile) {
        self.state.set_profile(profile);
    }

    /// Sets the executor's worker-pool configuration. The default uses all
    /// available cores; `threads: 1` takes the exact legacy serial path.
    /// `&mut self` like [`Database::set_profile`], and for the same
    /// reason.
    pub fn set_parallelism(&mut self, config: ParallelConfig) {
        self.parallel = config;
    }

    /// The active executor configuration.
    pub fn parallelism(&self) -> ParallelConfig {
        self.parallel
    }

    /// Replaces the plan cache with a fresh one of the given capacity
    /// (0 disables caching — the baseline benches measure against).
    pub fn set_plan_cache_capacity(&mut self, capacity: usize) {
        self.plan_cache = PlanCache::new(capacity);
    }

    /// The plan cache (stats, capacity).
    pub fn plan_cache(&self) -> &PlanCache {
        &self.plan_cache
    }

    /// The active optimizer.
    pub fn optimizer(&self) -> &vdm_optimizer::Optimizer {
        &self.state.optimizer
    }

    /// The bind-time state (catalog, views, macros, optimizer, version).
    pub fn state(&self) -> &DbState {
        &self.state
    }

    /// Catalog access.
    pub fn catalog(&self) -> &Catalog {
        &self.state.catalog
    }

    /// Mutable catalog access (for generators). Note: direct catalog
    /// mutation bypasses the metadata version counter; follow up with
    /// [`Database::invalidate_plans`] if cached plans could be affected.
    pub fn catalog_mut(&mut self) -> &mut Catalog {
        &mut self.state.catalog
    }

    /// Split borrow for data generators that register schema and load data
    /// in one call (`gen.build(catalog, engine)`).
    pub fn catalog_and_engine(&mut self) -> (&mut Catalog, &StorageEngine) {
        (&mut self.state.catalog, &self.engine)
    }

    /// Bumps the metadata version, invalidating every cached plan. Only
    /// needed after out-of-band mutations via [`Database::catalog_mut`] /
    /// [`Database::views_mut`]; the SQL surface bumps automatically.
    pub fn invalidate_plans(&mut self) {
        self.state.bump_version();
    }

    /// Storage access.
    pub fn engine(&self) -> &StorageEngine {
        &self.engine
    }

    /// Plan-view registry access (for the VDM layer). See
    /// [`Database::catalog_mut`] about plan invalidation.
    pub fn views_mut(&mut self) -> &mut ViewRegistry {
        &mut self.state.views
    }

    /// Registers a plan-backed view (VDM layer entry point).
    pub fn register_view(&mut self, name: &str, plan: PlanRef) {
        self.state.views.register(name, plan);
        self.state.bump_version();
    }

    /// Creates a cached (materialized) view over a SELECT — the SCV/DCV
    /// feature of §3. The optimized plan is materialized immediately.
    pub fn create_cached_view(
        &self,
        name: &str,
        sql: &str,
        mode: CacheMode,
    ) -> Result<Arc<CachedView>> {
        let plan = self.optimized_plan(sql)?;
        self.cache.register(name, plan, mode, &self.engine)
    }

    /// Looks up a cached view.
    pub fn cached_view(&self, name: &str) -> Option<Arc<CachedView>> {
        self.cache.get(name)
    }

    /// Reads a cached view (SCV: last refresh; DCV: maintained first).
    pub fn read_cached(&self, name: &str) -> Result<Arc<Batch>> {
        let view = self
            .cache
            .get(name)
            .ok_or_else(|| VdmError::Catalog(format!("unknown cached view {name:?}")))?;
        view.read(&self.engine)
    }

    /// `EXPLAIN ANALYZE` for a cached-view read: performs the read (DCV
    /// maintenance included), reporting what maintenance did in the
    /// `[view cache: ...]` header — `fresh`, `incremental(+N rows)`, or
    /// `full refresh` — followed by the maintenance counters and the
    /// view's definition plan.
    pub fn explain_analyze_cached(&self, name: &str) -> Result<String> {
        let view = self
            .cache
            .get(name)
            .ok_or_else(|| VdmError::Catalog(format!("unknown cached view {name:?}")))?;
        let started = std::time::Instant::now();
        let (data, outcome) = view.read_with_outcome(&self.engine)?;
        let elapsed = started.elapsed();
        let stats = view.stats();
        Ok(format!(
            "== EXPLAIN ANALYZE VIEW {} [view cache: {}] ==\n\
             {} row(s) returned, elapsed time={}\n\
             refreshes: full={}, incremental={}, noop={}, delta rows folded: {}\n\
             == view plan ==\n{}",
            view.name(),
            outcome.describe(),
            data.num_rows(),
            crate::session::fmt_nanos(elapsed.as_nanos() as u64),
            stats.full_refreshes,
            stats.incremental_refreshes,
            stats.noop_refreshes,
            stats.delta_rows,
            vdm_plan::explain(view.plan()),
        ))
    }

    /// Refreshes every static cached view (the periodic refresh tick).
    /// Readers of those views are only blocked for the `Arc` swap, never
    /// for the recomputation.
    pub fn refresh_cached_views(&self) -> Result<usize> {
        self.cache.refresh_all_static(&self.engine)
    }

    /// The cached-view registry.
    pub fn view_cache(&self) -> &ViewCache {
        &self.cache
    }

    /// The per-query environment over this database's state.
    fn env(&self) -> QueryEnv<'_> {
        QueryEnv {
            state: &self.state,
            engine: &self.engine,
            plan_cache: &self.plan_cache,
            parallel: self.parallel,
        }
    }

    /// Executes a single statement.
    pub fn execute(&mut self, sql: &str) -> Result<StatementResult> {
        let mut results = self.execute_script(sql)?;
        results.pop().ok_or_else(|| VdmError::Exec("no statement executed".into()))
    }

    /// Executes a `;`-separated script, returning one result per statement.
    pub fn execute_script(&mut self, sql: &str) -> Result<Vec<StatementResult>> {
        let stmts = vdm_sql::parse(sql)?;
        let shapes = vdm_sql::canonical_shapes(sql).unwrap_or_default();
        stmts
            .iter()
            .enumerate()
            .map(|(i, s)| {
                // Statement texts and shapes come from the same lexer split;
                // a count mismatch (never expected) just bypasses the cache.
                let shape =
                    if shapes.len() == stmts.len() { Some(shapes[i].as_str()) } else { None };
                run_statement(
                    &mut self.state,
                    &self.engine,
                    &self.plan_cache,
                    self.parallel,
                    s,
                    shape,
                )
            })
            .collect()
    }

    /// Runs a SELECT and returns its rows. Reads share `&self`: the whole
    /// pipeline (cache lookup, bind/optimize on miss, execution) never
    /// mutates database state.
    pub fn query(&self, sql: &str) -> Result<Batch> {
        self.query_with_params(sql, &[])
    }

    /// Runs a parameterized SELECT (`?` / `$1` placeholders), splicing
    /// `params` in at execution time. The optimized parameterized plan is
    /// cached by statement shape, so repeated calls skip bind + optimize.
    pub fn query_with_params(&self, sql: &str, params: &[vdm_types::Value]) -> Result<Batch> {
        let stmt = vdm_sql::parse_one(sql)?;
        let Statement::Select(sel) = stmt else {
            return Err(VdmError::Bind("query() expects a SELECT; use execute()".into()));
        };
        let shape = vdm_sql::canonical_shape(sql)?;
        let root = qtrace::root("query");
        qtrace::attr("shape", format_args!("{shape:?}"));
        let result = self.env().run_select(&sel, Some(&shape), params);
        if let Some(trace) = root.finish() {
            *self.last_trace.lock().unwrap() = Some(trace);
        }
        result
    }

    /// The trace of the most recent traced query on this handle (each
    /// [`Database::query`] / [`Database::query_with_params`] call replaces
    /// it while automatic tracing — [`vdm_obs::trace::set_enabled`] — is
    /// on). Render with [`QueryTrace::render`] or export via
    /// [`QueryTrace::to_json`].
    pub fn last_trace(&self) -> Option<QueryTrace> {
        self.last_trace.lock().unwrap().clone()
    }

    /// `EXPLAIN TRACE` for a SELECT: runs the query under a forced trace
    /// (even when automatic tracing is disabled) and renders the span
    /// tree. The same output is available via SQL:
    /// `db.execute("explain trace select ...")`.
    pub fn explain_trace(&self, sql: &str) -> Result<String> {
        let stmt = vdm_sql::parse_one(sql)?;
        let Statement::Select(sel) = stmt else {
            return Err(VdmError::Bind("explain_trace() expects a SELECT".into()));
        };
        let shape = vdm_sql::canonical_shape(sql)?;
        let (text, trace) = explain_trace_select(&self.env(), &sel, Some(&shape), &[])?;
        if let Some(trace) = trace {
            *self.last_trace.lock().unwrap() = Some(trace);
        }
        Ok(text)
    }

    /// Binds a SELECT to its *unoptimized* logical plan.
    pub fn plan(&self, sql: &str) -> Result<PlanRef> {
        let stmt = vdm_sql::parse_one(sql)?;
        let Statement::Select(sel) = stmt else {
            return Err(VdmError::Bind("plan() expects a SELECT".into()));
        };
        self.state.binder().bind_select(&sel)
    }

    /// Binds and optimizes a SELECT.
    pub fn optimized_plan(&self, sql: &str) -> Result<PlanRef> {
        self.state.optimizer.optimize(&self.plan(sql)?)
    }

    /// Optimizes an externally built plan with the active profile.
    pub fn optimize(&self, plan: &PlanRef) -> Result<PlanRef> {
        self.state.optimizer.optimize(plan)
    }

    /// Executes a prebuilt logical plan (optimizing it first).
    pub fn execute_plan(&self, plan: &PlanRef) -> Result<(Batch, Metrics)> {
        let optimized = self.state.optimizer.optimize(plan)?;
        vdm_exec::execute_parallel_at(
            &optimized,
            &self.engine,
            self.engine.snapshot(),
            self.parallel,
        )
    }

    /// Executes a prebuilt plan WITHOUT optimization (baseline measurement).
    pub fn execute_plan_unoptimized(&self, plan: &PlanRef) -> Result<(Batch, Metrics)> {
        vdm_exec::execute_parallel_at(plan, &self.engine, self.engine.snapshot(), self.parallel)
    }

    /// EXPLAIN text for a SELECT: both the bound and the optimized plan,
    /// with operator-count summaries and the optimizer's pass trace.
    pub fn explain(&self, sql: &str) -> Result<String> {
        let plan = self.plan(sql)?;
        let stats = EngineStats::new(&self.engine);
        let (optimized, trace) =
            self.state.optimizer.optimize_traced_with(&plan, Some(&stats), None)?;
        let before = plan_stats(&plan);
        let after = plan_stats(&optimized);
        Ok(format!(
            "== bound plan ({} tables, {} joins) ==\n{}\n== optimized plan ({} tables, {} joins) ==\n{}\n== optimizer trace ==\n{}",
            before.table_instances,
            before.joins,
            vdm_plan::explain(&plan),
            after.table_instances,
            after.joins,
            explain_estimated(&self.state, &stats, &optimized),
            trace.render(),
        ))
    }

    /// EXPLAIN ANALYZE for a SELECT: resolves the plan through the plan
    /// cache (the header reports `[plan cache: hit|miss]`), executes with
    /// per-operator profiling, and renders the optimized plan annotated
    /// with runtime stats, the structured rewrite trace, and an execution
    /// summary.
    pub fn explain_analyze(&self, sql: &str) -> Result<String> {
        let stmt = vdm_sql::parse_one(sql)?;
        let Statement::Select(sel) = stmt else {
            return Err(VdmError::Bind("explain_analyze() expects a SELECT".into()));
        };
        let shape = vdm_sql::canonical_shape(sql)?;
        self.env().explain_analyze_select(&sel, Some(&shape), &[])
    }

    /// [`Database::explain_analyze`] over a prebuilt (unoptimized) plan.
    /// Prebuilt plans have no statement shape, so the plan cache is not
    /// consulted (`[plan cache: bypass]`).
    pub fn explain_analyze_plan(&self, plan: &PlanRef) -> Result<String> {
        let stats = EngineStats::new(&self.engine);
        let (optimized, trace) =
            self.state.optimizer.optimize_traced_with(plan, Some(&stats), None)?;
        let resolved = ResolvedPlan::bypass(optimized, trace);
        explain_analyze_bound(&resolved, &[], &self.engine, self.parallel)
    }

    /// The process-wide metrics registry (JSON / Prometheus exporters).
    pub fn metrics(&self) -> &'static MetricsRegistry {
        MetricsRegistry::global()
    }

    /// The process-wide query store (per-plan-digest execution history,
    /// slow-query log). See [`vdm_obs::QueryStore`].
    pub fn query_store(&self) -> &'static QueryStore {
        QueryStore::global()
    }
}

/// Renders an optimized plan with one `[est=N]` cardinality annotation per
/// node, estimated against current storage statistics under the active
/// profile's derivation options.
fn explain_estimated(
    state: &DbState,
    stats: &dyn vdm_plan::StatsProvider,
    plan: &PlanRef,
) -> String {
    let props = vdm_plan::PropertyCache::new();
    let card = vdm_plan::Cardinality::new(&props, state.optimizer.profile().derive_options())
        .with_stats(stats);
    vdm_plan::explain_with_estimates(plan, &card)
}

/// Runs one SELECT under a forced trace and renders the span tree,
/// returning the rendered text and the trace itself (None only when an
/// outer trace scope already owned the collection).
fn explain_trace_select(
    env: &QueryEnv<'_>,
    sel: &vdm_sql::SelectStmt,
    shape: Option<&str>,
    params: &[vdm_types::Value],
) -> Result<(String, Option<QueryTrace>)> {
    let root = qtrace::root_forced("query");
    if let Some(shape) = shape {
        qtrace::attr("shape", format_args!("{shape:?}"));
    }
    let result = env.run_select(sel, shape, params);
    let trace = root.finish();
    let batch = result?;
    let rendered = trace
        .as_ref()
        .map(|t| t.render())
        .unwrap_or_else(|| "(trace owned by an enclosing trace scope)\n".to_string());
    Ok((format!("== EXPLAIN TRACE ==\n{rendered}{} row(s) returned\n", batch.num_rows()), trace))
}

/// Runs one parsed statement against explicitly borrowed database parts.
/// This is the single statement dispatcher shared by [`Database`] (which
/// owns the parts) and `vdm-serve` (which borrows them under its locks).
/// `shape` is the statement's canonical token rendering when the caller
/// has it (enables plan caching for SELECTs); DDL arms bump the metadata
/// version so stamped plans go stale.
pub fn run_statement(
    state: &mut DbState,
    engine: &StorageEngine,
    plan_cache: &PlanCache,
    parallel: ParallelConfig,
    stmt: &Statement,
    shape: Option<&str>,
) -> Result<StatementResult> {
    fn env<'a>(
        state: &'a DbState,
        engine: &'a StorageEngine,
        plan_cache: &'a PlanCache,
        parallel: ParallelConfig,
    ) -> QueryEnv<'a> {
        QueryEnv { state, engine, plan_cache, parallel }
    }
    match stmt {
        Statement::Select(sel) => {
            let batch = env(state, engine, plan_cache, parallel).run_select(sel, shape, &[])?;
            Ok(StatementResult::Rows(batch))
        }
        Statement::CreateTable(ct) => {
            let def = state.binder().table_def(ct)?;
            let arc = state.catalog.create_table(def)?;
            engine.create_table(Arc::clone(&arc))?;
            state.bump_version();
            Ok(StatementResult::Created(ct.name.clone()))
        }
        Statement::CreateView { name, or_replace, query, macros } => {
            let (plan, defs) = {
                let binder = state.binder();
                let plan = binder.bind_select(query)?;
                let defs = macros
                    .iter()
                    .map(|m| binder.bind_macro(m, &plan.schema()))
                    .collect::<Result<Vec<_>>>()?;
                (plan, defs)
            };
            // Views are registered as plans (inlined at bind time).
            if *or_replace {
                state.views.register(name, plan);
            } else {
                state.views.register_new(name, plan)?;
            }
            for def in defs {
                state.macros.insert(def.name.to_ascii_lowercase(), def);
            }
            state.bump_version();
            Ok(StatementResult::Created(name.clone()))
        }
        Statement::DropTable { name, if_exists } => {
            if state.catalog.table(name).is_none() {
                return if *if_exists {
                    Ok(StatementResult::Dropped(name.clone()))
                } else {
                    Err(VdmError::Catalog(format!("unknown table {name:?}")))
                };
            }
            state.catalog.drop_table(name)?;
            engine.drop_table(name)?;
            state.bump_version();
            Ok(StatementResult::Dropped(name.clone()))
        }
        Statement::DropView { name, if_exists } => {
            if state.views.remove(name) {
                state.bump_version();
                Ok(StatementResult::Dropped(name.clone()))
            } else if *if_exists {
                Ok(StatementResult::Dropped(name.clone()))
            } else {
                Err(VdmError::Catalog(format!("unknown view {name:?}")))
            }
        }
        Statement::Insert { table, columns, rows } => {
            let values = {
                let binder = state.binder();
                let def = state.catalog.table_or_err(table)?;
                binder.insert_rows(&def, columns, rows)?
            };
            // Data changes don't bump the version: cached plans depend on
            // metadata, not contents.
            let n = engine.insert(table, values)?;
            Ok(StatementResult::Inserted(n))
        }
        Statement::Explain(inner) => match inner.as_ref() {
            Statement::Select(sel) => {
                let plan = state.binder().bind_select(sel)?;
                let stats = EngineStats::new(engine);
                let (optimized, _) =
                    state.optimizer.optimize_traced_with(&plan, Some(&stats), None)?;
                let before = plan_stats(&plan);
                let after = plan_stats(&optimized);
                Ok(StatementResult::Explained(format!(
                    "== bound plan ({} tables, {} joins) ==\n{}\n== optimized plan ({} tables, {} joins) ==\n{}",
                    before.table_instances,
                    before.joins,
                    vdm_plan::explain(&plan),
                    after.table_instances,
                    after.joins,
                    explain_estimated(state, &stats, &optimized),
                )))
            }
            _ => Err(VdmError::Unsupported("EXPLAIN supports SELECT only".into())),
        },
        Statement::ExplainAnalyze(inner) => match inner.as_ref() {
            Statement::Select(sel) => {
                // The inner SELECT's shape is the full shape minus the
                // EXPLAIN ANALYZE prefix — so it shares cache entries with
                // the bare statement.
                let inner_shape = shape.map(|s| s.strip_prefix("explain analyze ").unwrap_or(s));
                let text = env(state, engine, plan_cache, parallel).explain_analyze_select(
                    sel,
                    inner_shape,
                    &[],
                )?;
                Ok(StatementResult::Explained(text))
            }
            _ => Err(VdmError::Unsupported("EXPLAIN ANALYZE supports SELECT only".into())),
        },
        Statement::ExplainTrace(inner) => match inner.as_ref() {
            Statement::Select(sel) => {
                // Share cache entries with the bare statement, like
                // EXPLAIN ANALYZE does.
                let inner_shape = shape.map(|s| s.strip_prefix("explain trace ").unwrap_or(s));
                let (text, _) = explain_trace_select(
                    &env(state, engine, plan_cache, parallel),
                    sel,
                    inner_shape,
                    &[],
                )?;
                Ok(StatementResult::Explained(text))
            }
            _ => Err(VdmError::Unsupported("EXPLAIN TRACE supports SELECT only".into())),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vdm_types::Value;

    fn db() -> Database {
        let mut db = Database::hana();
        db.execute_script(
            "create table customer (c_custkey bigint primary key, c_name text not null);
             create table orders (o_orderkey bigint primary key, o_custkey bigint not null,
                                  o_total decimal(10,2) not null);
             insert into customer values (1, 'alice'), (2, 'bob');
             insert into orders values (10, 1, 5.00), (11, 1, 2.50), (12, 2, 9.99);",
        )
        .unwrap();
        db
    }

    #[test]
    fn end_to_end_select() {
        let db = db();
        let b = db
            .query("select c_name, count(*) as n from orders o left join customer c on o.o_custkey = c.c_custkey group by c_name order by n desc")
            .unwrap();
        assert_eq!(b.num_rows(), 2);
        assert_eq!(b.row(0), vec![Value::str("alice"), Value::Int(2)]);
    }

    #[test]
    fn uaj_eliminated_under_hana_not_under_system_x() {
        let mut db = db();
        let sql = "select o_orderkey from orders left join customer on o_custkey = c_custkey";
        let hana_plan = db.optimized_plan(sql).unwrap();
        assert_eq!(plan_stats(&hana_plan).joins, 0);
        db.set_profile(Profile::system_x());
        let weak_plan = db.optimized_plan(sql).unwrap();
        assert_eq!(plan_stats(&weak_plan).joins, 1);
        // Both still compute the same answer.
        let a = db.query(sql).unwrap();
        db.set_profile(Profile::hana());
        let b = db.query(sql).unwrap();
        assert_eq!(a.num_rows(), b.num_rows());
    }

    #[test]
    fn explain_shows_both_plans() {
        let mut db = db();
        let text = db
            .explain("select o_orderkey from orders left join customer on o_custkey = c_custkey")
            .unwrap();
        assert!(text.contains("bound plan (2 tables, 1 joins)"), "{text}");
        assert!(text.contains("optimized plan (1 tables, 0 joins)"), "{text}");
        let StatementResult::Explained(e) =
            db.execute("explain select o_orderkey from orders").unwrap()
        else {
            panic!("expected EXPLAIN output")
        };
        assert!(e.contains("Scan orders"));
    }

    #[test]
    fn explain_analyze_reports_rows_trace_and_metrics() {
        let mut db = db();
        let rule =
            vdm_obs::registry::label(vdm_obs::names::REWRITE_FIRED_TOTAL, "rule", "uaj-removal");
        let before = db.metrics().counter(&rule);
        let text = db
            .explain_analyze(
                "select o_orderkey from orders left join customer on o_custkey = c_custkey",
            )
            .unwrap();
        // The UAJ is removed, leaving a profiled scan/project pipeline
        // annotated with estimated and actual cardinalities.
        assert!(text.contains("act=3"), "{text}");
        assert!(text.contains("est="), "{text}");
        assert!(text.contains("time="), "{text}");
        assert!(text.contains("uaj-removal"), "{text}");
        assert!(text.contains("[plan cache: miss]"), "{text}");
        assert!(db.metrics().counter(&rule) > before, "{text}");
        // A second run is served from the plan cache.
        let again = db
            .explain_analyze(
                "select o_orderkey from orders left join customer on o_custkey = c_custkey",
            )
            .unwrap();
        assert!(again.contains("[plan cache: hit]"), "{again}");
        // The SQL surface goes through the same path.
        let StatementResult::Explained(e) =
            db.execute("explain analyze select o_orderkey from orders").unwrap()
        else {
            panic!("expected EXPLAIN ANALYZE output")
        };
        assert!(e.contains("Scan orders"), "{e}");
        assert!(e.contains("rewrite trace"), "{e}");
    }

    #[test]
    fn views_and_macros_via_sql() {
        let mut db = db();
        db.execute(
            "create view sales as select o_custkey, o_total from orders \
             with expression macros (sum(o_total) / count(*) as avg_order)",
        )
        .unwrap();
        let b = db
            .query("select o_custkey, expression_macro(avg_order) from sales group by o_custkey order by 1")
            .unwrap();
        assert_eq!(b.num_rows(), 2);
        // Duplicate view creation fails; OR REPLACE succeeds.
        assert!(db.execute("create view sales as select 1 from orders").is_err());
        db.execute("create or replace view sales as select o_custkey from orders").unwrap();
    }

    #[test]
    fn drop_statements_remove_objects() {
        let mut db = db();
        db.execute("create view v1 as select o_orderkey from orders").unwrap();
        let StatementResult::Dropped(name) = db.execute("drop view v1").unwrap() else {
            panic!("expected Dropped")
        };
        assert_eq!(name, "v1");
        assert!(db.query("select * from v1").is_err());
        assert!(db.execute("drop view v1").is_err());
        db.execute("drop view if exists v1").unwrap();

        db.execute("create table scratch (k bigint primary key)").unwrap();
        db.execute("insert into scratch values (1)").unwrap();
        db.execute("drop table scratch").unwrap();
        assert!(db.query("select * from scratch").is_err());
        assert!(db.execute("drop table scratch").is_err());
        db.execute("drop table if exists scratch").unwrap();
    }

    #[test]
    fn plan_cache_hits_and_invalidates() {
        let mut db = db();
        let sql = "select c_name from customer where c_custkey = ?";
        let a = db.query_with_params(sql, &[Value::Int(1)]).unwrap();
        assert_eq!(a.row(0)[0], Value::str("alice"));
        let before = db.plan_cache().stats();
        // Same shape, different value: a hit with the other answer.
        let b = db.query_with_params(sql, &[Value::Int(2)]).unwrap();
        assert_eq!(b.row(0)[0], Value::str("bob"));
        assert_eq!(db.plan_cache().stats().hits, before.hits + 1);
        // `$1` lexes to the same shape as `?`.
        let c = db
            .query_with_params("select c_name from customer where c_custkey = $1", &[Value::Int(1)])
            .unwrap();
        assert_eq!(c.row(0)[0], Value::str("alice"));
        assert_eq!(db.plan_cache().stats().hits, before.hits + 2);
        // DDL bumps the metadata version: next lookup misses and re-optimizes.
        db.execute("create table unrelated (k bigint primary key)").unwrap();
        let d = db.query_with_params(sql, &[Value::Int(1)]).unwrap();
        assert_eq!(d.row(0)[0], Value::str("alice"));
        let after = db.plan_cache().stats();
        assert_eq!(after.hits, before.hits + 2);
        assert!(after.misses > before.misses);
    }

    #[test]
    fn constraint_violations_surface() {
        let mut db = db();
        assert!(db.execute("insert into customer values (1, 'dup')").is_err());
        assert!(db.execute("insert into customer values (5, null)").is_err());
        assert!(db.query("select nope from customer").is_err());
    }

    #[test]
    fn cached_views_through_facade() {
        let mut db = db();
        let scv = db
            .create_cached_view(
                "order_totals",
                "select o_custkey, sum(o_total) as total from orders group by o_custkey",
                CacheMode::Static,
            )
            .unwrap();
        assert_eq!(db.read_cached("order_totals").unwrap().num_rows(), 2);
        db.execute("insert into orders values (13, 2, 1.00)").unwrap();
        // SCV is stale until refreshed.
        assert!(scv.staleness(db.engine()) > 0);
        db.refresh_cached_views().unwrap();
        assert_eq!(scv.staleness(db.engine()), 0);
        // DCV keeps itself current.
        let _dcv = db
            .create_cached_view(
                "order_count",
                "select count(*) as n from orders",
                CacheMode::Dynamic,
            )
            .unwrap();
        db.execute("insert into orders values (14, 2, 2.00)").unwrap();
        let n = db.read_cached("order_count").unwrap();
        assert_eq!(n.row(0)[0], vdm_types::Value::Int(5));
        assert!(db.read_cached("missing").is_err());
    }

    #[test]
    fn like_predicate_end_to_end() {
        let db = db();
        let rows =
            db.query("select c_name from customer where c_name like 'al%' order by 1").unwrap();
        assert_eq!(rows.num_rows(), 1);
        assert_eq!(rows.row(0)[0], vdm_types::Value::str("alice"));
        let rows =
            db.query("select c_name from customer where c_name not like '%ob' order by 1").unwrap();
        assert_eq!(rows.num_rows(), 1);
    }

    #[test]
    fn parallelism_config_round_trips_and_agrees_with_serial() {
        let mut db = db();
        let sql = "select c_name, count(*) as n from orders o \
                   left join customer c on o.o_custkey = c.c_custkey \
                   group by c_name order by n desc";
        db.set_parallelism(ParallelConfig { threads: 1, morsel_rows: 2 });
        assert_eq!(db.parallelism().threads, 1);
        let serial = db.query(sql).unwrap();
        db.set_parallelism(ParallelConfig { threads: 4, morsel_rows: 2 });
        let parallel = db.query(sql).unwrap();
        assert_eq!(parallel.to_rows(), serial.to_rows());
    }

    #[test]
    fn execute_plan_paths() {
        let db = db();
        let plan = db.plan("select count(*) from orders").unwrap();
        let (opt_batch, opt_metrics) = db.execute_plan(&plan).unwrap();
        let (raw_batch, _raw_metrics) = db.execute_plan_unoptimized(&plan).unwrap();
        assert_eq!(opt_batch.row(0), raw_batch.row(0));
        assert!(opt_metrics.operators >= 1);
    }
}
