//! The mutable half of a database: everything bind/optimize reads.
//!
//! [`DbState`] groups the catalog, view registries, and optimizer behind a
//! single value so a serving layer ([`vdm-serve`]) can put exactly the
//! bind-time state behind one `RwLock` while the storage engine and plan
//! cache (both internally synchronized) stay lock-free at that level.
//!
//! The struct carries a monotonically increasing **metadata version**.
//! Every DDL-shaped mutation (CREATE/DROP TABLE, CREATE/DROP VIEW, plan
//! view registration) bumps it; cached plans are stamped with the version
//! they were optimized under, and the plan cache treats a stamp mismatch
//! as a miss. Profile switches do *not* bump the version — the profile
//! fingerprint is part of the cache key, so entries for the previous
//! profile stay valid and become reachable again if the profile is
//! switched back.
//!
//! [`vdm-serve`]: ../../vdm_serve/index.html

use vdm_catalog::Catalog;
use vdm_optimizer::{Optimizer, Profile};
use vdm_plan::ViewRegistry;
use vdm_sql::{Binder, MacroRegistry};

/// Catalog + view registries + optimizer + metadata version: the state a
/// query's bind/optimize phase reads and DDL writes.
pub struct DbState {
    pub catalog: Catalog,
    pub views: ViewRegistry,
    pub macros: MacroRegistry,
    pub optimizer: Optimizer,
    version: u64,
}

impl DbState {
    /// Fresh state with the given optimizer profile.
    pub fn new(profile: Profile) -> DbState {
        DbState {
            catalog: Catalog::new(),
            views: ViewRegistry::new(),
            macros: MacroRegistry::new(),
            optimizer: Optimizer::new(profile),
            version: 0,
        }
    }

    /// The current metadata version (bumped by every DDL mutation).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Records a metadata change, invalidating all version-stamped cached
    /// plans. Call after any mutation that can change how a statement
    /// binds (table/view creation or removal, macro registration).
    pub fn bump_version(&mut self) {
        self.version += 1;
    }

    /// Swaps the optimizer profile. No version bump: the profile
    /// fingerprint is part of every plan-cache key, so plans optimized
    /// under other profiles simply stop matching.
    pub fn set_profile(&mut self, profile: Profile) {
        self.optimizer = Optimizer::new(profile);
    }

    /// A binder over this state's catalog, views, and macros.
    pub fn binder(&self) -> Binder<'_> {
        Binder::new(&self.catalog, &self.views, &self.macros)
    }

    /// Rendering of the active profile used in plan-cache keys.
    /// (`Profile` holds only flags, so its `Debug` form is a faithful
    /// fingerprint.)
    pub fn profile_fingerprint(&self) -> String {
        format!("{:?}", self.optimizer.profile())
    }
}
