//! Feedback-driven re-optimization support: the storage-backed
//! [`StatsProvider`] and the misestimate arithmetic that decides when a
//! cached plan gets re-planned with observed cardinalities.
//!
//! The loop (DESIGN.md §14): every optimized SELECT is estimated node by
//! node and the estimates are cached next to the plan; the profiled
//! executor records true per-node `rows_out` into the
//! [`QueryStore`](vdm_obs::QueryStore) keyed by canonical plan digest; on
//! the next plan-cache hit the two are compared, and when the worst
//! est/actual ratio exceeds [`REOPT_WORST_RATIO_THRESHOLD`] the statement
//! is re-optimized with the observed values injected as per-subtree
//! overriding estimates ([`CardOverrides`]) and the cache entry replaced.

use vdm_plan::{node_estimates, subtree_digests, CardOverrides, Cardinality, PlanRef};
use vdm_plan::{DeriveOptions, PropertyCache, StatsProvider, TableStats};
use vdm_storage::{Snapshot, StorageEngine};

/// Worst-node `max(est, act) / min(est, act)` ratio above which a cache
/// hit triggers re-optimization with observed cardinalities.
pub const REOPT_WORST_RATIO_THRESHOLD: f64 = 4.0;

/// [`StatsProvider`] over the storage engine at one snapshot: exact
/// visible row counts plus zone-map column ranges (present after the
/// first delta merge; string columns have none).
pub struct EngineStats<'a> {
    engine: &'a StorageEngine,
    snapshot: Snapshot,
}

impl<'a> EngineStats<'a> {
    /// Statistics as of the engine's current snapshot.
    pub fn new(engine: &'a StorageEngine) -> EngineStats<'a> {
        EngineStats { engine, snapshot: engine.snapshot() }
    }
}

impl StatsProvider for EngineStats<'_> {
    fn table_stats(&self, table: &str) -> Option<TableStats> {
        let rows = self.engine.row_count(table, self.snapshot).ok()? as u64;
        let ranges = self.engine.column_ranges(table).unwrap_or_default();
        Some(TableStats { rows, ranges })
    }
}

/// Per-node estimates for an optimized plan, in pre-order node-id order —
/// what gets cached beside the plan and stamped into store records.
pub fn estimates_with(
    plan: &PlanRef,
    stats: &dyn StatsProvider,
    opts: DeriveOptions,
    overrides: Option<&CardOverrides>,
) -> Vec<(u32, u64)> {
    let props = PropertyCache::new();
    let mut card = Cardinality::new(&props, opts).with_stats(stats);
    if let Some(ov) = overrides {
        card = card.with_overrides(ov);
    }
    node_estimates(plan, &card)
}

/// The worst per-node misestimate between cached estimates and observed
/// average rows: `(ratio, node id)` with ratio ≥ 1, over nodes present in
/// both. `None` when the sets don't overlap. Counts are +1-smoothed so a
/// zero on either side doesn't divide by zero.
pub fn worst_misestimate(est: &[(u32, u64)], observed: &[(u32, f64)]) -> Option<(f64, u32)> {
    let obs: std::collections::HashMap<u32, f64> = observed.iter().copied().collect();
    let mut worst: Option<(f64, u32)> = None;
    for &(node, e) in est {
        let Some(&a) = obs.get(&node) else { continue };
        let (e, a) = (e as f64 + 1.0, a + 1.0);
        let ratio = (e / a).max(a / e);
        if worst.map(|(w, _)| ratio > w).unwrap_or(true) {
            worst = Some((ratio, node));
        }
    }
    worst
}

/// Translates observed per-node rows (keyed by the cached plan's
/// pre-order node ids) into digest-keyed [`CardOverrides`], so they apply
/// to structurally identical subtrees wherever they appear in the
/// re-optimized plan.
pub fn overrides_from_observed(plan: &PlanRef, observed: &[(u32, f64)]) -> CardOverrides {
    let digests = subtree_digests(plan);
    let mut overrides = CardOverrides::new();
    for &(node, rows) in observed {
        if let Some(&digest) = digests.get(&(node as usize)) {
            overrides.insert(digest, rows);
        }
    }
    overrides
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worst_misestimate_picks_the_largest_ratio_either_direction() {
        let est = vec![(0u32, 100u64), (1, 10), (2, 1000)];
        // Node 1 is 10x under, node 2 ~2x over, node 3 unknown.
        let obs = vec![(1u32, 109.0f64), (2, 499.0), (9, 1.0)];
        let (ratio, node) = worst_misestimate(&est, &obs).unwrap();
        assert_eq!(node, 1);
        assert!((ratio - 10.0).abs() < 0.1, "{ratio}");
        assert!(worst_misestimate(&est, &[(7, 3.0)]).is_none());
    }
}
