//! The shared query path: cache-aware plan resolution + execution.
//!
//! Both [`Database`](crate::Database) (single owner, `&mut self` facade)
//! and `vdm-serve` sessions (many concurrent handles over shared state)
//! run SELECTs through [`QueryEnv`]. The pipeline splits in two so a
//! serving layer can drop its read lock on [`DbState`](crate::DbState)
//! before execution starts:
//!
//! 1. [`QueryEnv::select_plan`] — plan-cache lookup by canonical shape,
//!    bind + optimize on a miss (the only place `optimize` runs);
//! 2. [`execute_select`] — parameter substitution, parallel execution,
//!    metrics recording. Needs only the plan and the engine.

use crate::plan_cache::{CachedPlan, PlanCache, PlanCacheKey};
use crate::state::DbState;
use std::sync::Arc;
use std::time::Instant;
use vdm_exec::{Metrics, NodeIndex, ParallelConfig, QueryProfile};
use vdm_obs::MetricsRegistry;
use vdm_optimizer::Trace;
use vdm_plan::PlanRef;
use vdm_sql::SelectStmt;
use vdm_storage::{Batch, StorageEngine};
use vdm_types::{Result, SqlType, Value};

/// How a plan was obtained, reported in EXPLAIN ANALYZE headers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// Served from the plan cache.
    Hit,
    /// Bound and optimized now, then cached.
    Miss,
    /// The entry point had no statement shape (e.g. a prebuilt plan), so
    /// the cache was not consulted.
    Bypass,
}

impl CacheOutcome {
    /// The `[plan cache: ...]` header token.
    pub fn label(&self) -> &'static str {
        match self {
            CacheOutcome::Hit => "hit",
            CacheOutcome::Miss => "miss",
            CacheOutcome::Bypass => "bypass",
        }
    }
}

/// Runtime types of parameter values, in placeholder order. NULL carries
/// no type; it binds as the same default the binder gives a bare NULL
/// literal (INT, nullable).
pub fn param_types_of(values: &[Value]) -> Vec<SqlType> {
    values.iter().map(|v| v.sql_type().unwrap_or(SqlType::Int)).collect()
}

/// Borrowed view of everything one SELECT needs. Constructed per query —
/// by `Database` from its own fields, by `vdm-serve` from a read-locked
/// [`DbState`] plus its shared engine/cache.
pub struct QueryEnv<'a> {
    pub state: &'a DbState,
    pub engine: &'a StorageEngine,
    pub plan_cache: &'a PlanCache,
    pub parallel: ParallelConfig,
}

impl QueryEnv<'_> {
    /// Resolves the optimized (still parameterized) plan for `sel`:
    /// plan-cache lookup when a canonical `shape` is supplied, bind +
    /// optimize + cache-fill on a miss, straight bind + optimize when no
    /// shape is available (script fragments, prebuilt ASTs).
    pub fn select_plan(
        &self,
        sel: &SelectStmt,
        shape: Option<&str>,
        params: &[Value],
    ) -> Result<(PlanRef, Trace, CacheOutcome)> {
        let types = param_types_of(params);
        let Some(shape) = shape else {
            let (plan, trace) = self.bind_and_optimize(sel, &types)?;
            return Ok((plan, trace, CacheOutcome::Bypass));
        };
        let key = PlanCacheKey {
            shape: shape.to_string(),
            profile: self.state.profile_fingerprint(),
            param_types: types.clone(),
        };
        let version = self.state.version();
        if let Some(cached) = self.plan_cache.get(&key, version) {
            return Ok((cached.plan.clone(), cached.trace.clone(), CacheOutcome::Hit));
        }
        let (plan, trace) = self.bind_and_optimize(sel, &types)?;
        self.plan_cache.insert(
            key,
            Arc::new(CachedPlan { plan: plan.clone(), trace: trace.clone(), version }),
        );
        Ok((plan, trace, CacheOutcome::Miss))
    }

    fn bind_and_optimize(
        &self,
        sel: &SelectStmt,
        param_types: &[SqlType],
    ) -> Result<(PlanRef, Trace)> {
        let bound = self.state.binder().with_param_types(param_types).bind_select(sel)?;
        self.state.optimizer.optimize_traced(&bound)
    }

    /// The full SELECT pipeline: plan resolution, parameter substitution,
    /// parallel execution, metrics.
    pub fn run_select(
        &self,
        sel: &SelectStmt,
        shape: Option<&str>,
        params: &[Value],
    ) -> Result<Batch> {
        let (plan, trace, _) = self.select_plan(sel, shape, params)?;
        execute_select(&plan, params, self.engine, self.parallel, &trace)
    }

    /// EXPLAIN ANALYZE through the cached path; the header reports whether
    /// the plan came from the cache.
    pub fn explain_analyze_select(
        &self,
        sel: &SelectStmt,
        shape: Option<&str>,
        params: &[Value],
    ) -> Result<String> {
        let (plan, trace, outcome) = self.select_plan(sel, shape, params)?;
        explain_analyze_bound(&plan, &trace, outcome, params, self.engine, self.parallel)
    }
}

/// Executes a resolved (possibly parameterized) plan: splices `params` in,
/// runs it on the morsel executor, and records query metrics. Needs no
/// access to [`DbState`] — a serving layer calls this after releasing its
/// state lock.
pub fn execute_select(
    plan: &PlanRef,
    params: &[Value],
    engine: &StorageEngine,
    parallel: ParallelConfig,
    trace: &Trace,
) -> Result<Batch> {
    let bound = vdm_plan::bind_params(plan, params)?;
    let start = Instant::now();
    let (batch, metrics) =
        vdm_exec::execute_parallel_at(&bound, engine, engine.snapshot(), parallel)?;
    record_query(&metrics, trace, start.elapsed());
    Ok(batch)
}

/// EXPLAIN ANALYZE over a resolved plan: profiled execution plus the
/// annotated rendering. `outcome` feeds the `[plan cache: ...]` header
/// token.
pub fn explain_analyze_bound(
    plan: &PlanRef,
    trace: &Trace,
    outcome: CacheOutcome,
    params: &[Value],
    engine: &StorageEngine,
    parallel: ParallelConfig,
) -> Result<String> {
    let bound = vdm_plan::bind_params(plan, params)?;
    let index = NodeIndex::new(&bound);
    let start = Instant::now();
    let (batch, metrics, profile) =
        vdm_exec::execute_profiled_at(&bound, engine, engine.snapshot(), parallel)?;
    let elapsed = start.elapsed();
    record_query(&metrics, trace, elapsed);
    let annotated = render_analyzed(&bound, &index, &profile);
    Ok(format!(
        "== EXPLAIN ANALYZE ({} thread(s)) [plan cache: {}] ==\n{}\n{}== rewrite trace ==\n{}== execution summary ==\n{} row(s) returned, elapsed time={}\nrows scanned: {}, join probe rows: {}, rows joined: {}, operators: {}\n",
        parallel.threads.max(1),
        outcome.label(),
        trace.render_opt_stats(),
        annotated,
        trace.render_events(),
        batch.num_rows(),
        fmt_nanos(elapsed.as_nanos() as u64),
        metrics.rows_scanned,
        metrics.join_probe_rows,
        metrics.join_output_rows,
        metrics.operators,
    ))
}

/// Renders `plan` with one `[#id rows=... time=...]` annotation per node,
/// deriving each operator's input rows from its children's recorded output.
fn render_analyzed(plan: &PlanRef, index: &NodeIndex, profile: &QueryProfile) -> String {
    vdm_plan::explain_annotated(plan, &|node| {
        let id = index.id_of(node)?;
        Some(match profile.nodes.get(&id) {
            Some(s) => {
                let children = node.children();
                let mut note = format!("[#{id} rows={}", s.rows_out);
                if !children.is_empty() {
                    let rows_in: u64 = children
                        .iter()
                        .filter_map(|c| index.id_of(c).and_then(|cid| profile.rows_out(cid)))
                        .sum();
                    note.push_str(&format!(" in={rows_in}"));
                }
                note.push_str(&format!(" time={} calls={}", fmt_nanos(s.nanos), s.invocations));
                if s.workers > 1 {
                    note.push_str(&format!(" workers={}", s.workers));
                }
                note.push(']');
                note
            }
            // LIMIT budgets can satisfy a query before some subtrees run.
            None => format!("[#{id} not executed]"),
        })
    })
}

/// Feeds one query's counters into the process-wide metrics registry.
pub(crate) fn record_query(metrics: &Metrics, trace: &Trace, elapsed: std::time::Duration) {
    let reg = MetricsRegistry::global();
    reg.inc("vdm_queries_total", 1);
    reg.observe("vdm_query_seconds", elapsed.as_secs_f64());
    reg.observe("vdm_optimize_seconds", trace.optimize_nanos as f64 / 1e9);
    reg.inc("vdm_rows_scanned_total", metrics.rows_scanned as u64);
    reg.inc("vdm_rows_joined_total", metrics.join_output_rows as u64);
    reg.inc("vdm_morsel_steals_total", metrics.morsel_steals as u64);
    reg.inc("vdm_morsel_size_bytes", metrics.morsel_bytes as u64);
    for (rule, n) in trace.hit_counts() {
        reg.inc(&vdm_obs::registry::label("vdm_rewrite_fired_total", "rule", &rule), n);
    }
}

/// `1234` → `"1.23us"`: human-readable nanosecond counts.
pub(crate) fn fmt_nanos(n: u64) -> String {
    if n >= 1_000_000_000 {
        format!("{:.2}s", n as f64 / 1e9)
    } else if n >= 1_000_000 {
        format!("{:.2}ms", n as f64 / 1e6)
    } else if n >= 1_000 {
        format!("{:.2}us", n as f64 / 1e3)
    } else {
        format!("{n}ns")
    }
}
