//! The shared query path: cache-aware plan resolution + execution.
//!
//! Both [`Database`](crate::Database) (single owner, `&mut self` facade)
//! and `vdm-serve` sessions (many concurrent handles over shared state)
//! run SELECTs through [`QueryEnv`]. The pipeline splits in two so a
//! serving layer can drop its read lock on [`DbState`](crate::DbState)
//! before execution starts:
//!
//! 1. [`QueryEnv::select_plan`] — plan-cache lookup by canonical shape,
//!    bind + optimize on a miss (the only place `optimize` runs); returns
//!    a [`ResolvedPlan`] carrying the canonical plan digest;
//! 2. [`execute_select`] — parameter substitution, parallel execution,
//!    metrics recording, and (when the [`QueryStore`] is enabled)
//!    per-digest history recording with slow-query capture.
//!
//! Both phases emit [`vdm_obs::trace`] spans, so a query running under an
//! active trace contributes `select_plan` → `plan_cache.lookup` / `bind` /
//! `optimize` and `execute` spans to one causal tree.

use crate::feedback::{self, EngineStats};
use crate::plan_cache::{CachedPlan, PlanCache, PlanCacheKey};
use crate::state::DbState;
use std::sync::Arc;
use std::time::Instant;
use vdm_exec::{Metrics, NodeIndex, ParallelConfig, QueryProfile};
use vdm_obs::trace as qtrace;
use vdm_obs::{names, ExecRecord, FeedbackProvider, MetricsRegistry, QueryStore};
use vdm_optimizer::{Capability, Trace};
use vdm_plan::{CardOverrides, PlanRef};
use vdm_sql::SelectStmt;
use vdm_storage::{Batch, StorageEngine};
use vdm_types::{Result, SqlType, Value};

/// How a plan was obtained, reported in EXPLAIN ANALYZE headers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// Served from the plan cache.
    Hit,
    /// Bound and optimized now, then cached.
    Miss,
    /// The entry point had no statement shape (e.g. a prebuilt plan), so
    /// the cache was not consulted.
    Bypass,
}

impl CacheOutcome {
    /// The `[plan cache: ...]` header token.
    pub fn label(&self) -> &'static str {
        match self {
            CacheOutcome::Hit => "hit",
            CacheOutcome::Miss => "miss",
            CacheOutcome::Bypass => "bypass",
        }
    }
}

/// A fully resolved SELECT: the optimized (still parameterized) plan plus
/// everything downstream consumers need — the optimizer trace for
/// EXPLAIN, the cache outcome for headers and store hit/miss accounting,
/// and the canonical plan digest that keys the [`QueryStore`].
pub struct ResolvedPlan {
    pub plan: PlanRef,
    pub trace: Trace,
    pub outcome: CacheOutcome,
    /// `plan_digest_canonical` of the optimized plan (cached alongside
    /// the plan, so cache hits don't re-hash).
    pub digest: u64,
    /// Canonical statement shape; empty for shapeless (bypass) plans.
    pub shape: String,
    /// Per-node cardinality estimates (pre-order node id → rows) of the
    /// optimized plan; empty when the entry point computed none (bypass).
    pub estimates: Vec<(u32, u64)>,
}

impl ResolvedPlan {
    /// Wraps an already-optimized plan that never saw the plan cache
    /// (prebuilt plans, script fragments).
    pub fn bypass(plan: PlanRef, trace: Trace) -> ResolvedPlan {
        let digest = vdm_plan::plan_digest_canonical(&plan);
        ResolvedPlan {
            plan,
            trace,
            outcome: CacheOutcome::Bypass,
            digest,
            shape: String::new(),
            estimates: vec![],
        }
    }
}

/// Runtime types of parameter values, in placeholder order. NULL carries
/// no type; it binds as the same default the binder gives a bare NULL
/// literal (INT, nullable).
pub fn param_types_of(values: &[Value]) -> Vec<SqlType> {
    values.iter().map(|v| v.sql_type().unwrap_or(SqlType::Int)).collect()
}

/// Borrowed view of everything one SELECT needs. Constructed per query —
/// by `Database` from its own fields, by `vdm-serve` from a read-locked
/// [`DbState`] plus its shared engine/cache.
pub struct QueryEnv<'a> {
    pub state: &'a DbState,
    pub engine: &'a StorageEngine,
    pub plan_cache: &'a PlanCache,
    pub parallel: ParallelConfig,
}

impl QueryEnv<'_> {
    /// Resolves the optimized (still parameterized) plan for `sel`:
    /// plan-cache lookup when a canonical `shape` is supplied, bind +
    /// optimize + cache-fill on a miss, straight bind + optimize when no
    /// shape is available (script fragments, prebuilt ASTs).
    pub fn select_plan(
        &self,
        sel: &SelectStmt,
        shape: Option<&str>,
        params: &[Value],
    ) -> Result<ResolvedPlan> {
        let _sp = qtrace::span("select_plan");
        let types = param_types_of(params);
        let Some(shape) = shape else {
            let (plan, trace) = self.bind_and_optimize(sel, &types, None)?;
            let resolved = ResolvedPlan::bypass(plan, trace);
            qtrace::attr("cache", CacheOutcome::Bypass.label());
            qtrace::attr("digest", format_args!("{:016x}", resolved.digest));
            return Ok(resolved);
        };
        let key = PlanCacheKey {
            shape: shape.to_string(),
            profile: self.state.profile_fingerprint(),
            param_types: types.clone(),
        };
        let version = self.state.version();
        let cached = {
            let _lookup = qtrace::span("plan_cache.lookup");
            let cached = self.plan_cache.get(&key, version);
            qtrace::attr("outcome", if cached.is_some() { "hit" } else { "miss" });
            cached
        };
        if let Some(cached) = cached {
            if let Some(reoptimized) =
                self.maybe_reoptimize(sel, shape, &types, &key, version, &cached)?
            {
                return Ok(reoptimized);
            }
            qtrace::attr("digest", format_args!("{:016x}", cached.digest));
            return Ok(ResolvedPlan {
                plan: cached.plan.clone(),
                trace: cached.trace.clone(),
                outcome: CacheOutcome::Hit,
                digest: cached.digest,
                shape: shape.to_string(),
                estimates: cached.estimates.clone(),
            });
        }
        let (plan, trace) = self.bind_and_optimize(sel, &types, None)?;
        let digest = vdm_plan::plan_digest_canonical(&plan);
        qtrace::attr("digest", format_args!("{digest:016x}"));
        let estimates = self.estimate_nodes(&plan, None);
        self.plan_cache.insert(
            key,
            Arc::new(CachedPlan {
                plan: plan.clone(),
                trace: trace.clone(),
                version,
                digest,
                estimates: estimates.clone(),
            }),
        );
        Ok(ResolvedPlan {
            plan,
            trace,
            outcome: CacheOutcome::Miss,
            digest,
            shape: shape.to_string(),
            estimates,
        })
    }

    /// Feedback-driven re-optimization on a plan-cache hit: when the query
    /// store has observed per-node cardinalities for this digest and the
    /// worst node misestimate exceeds
    /// [`feedback::REOPT_WORST_RATIO_THRESHOLD`], the statement is
    /// re-optimized with the observed values as overriding estimates and
    /// the cache entry replaced under the same key. Returns `None` when the
    /// cached plan stands (no evidence, small misestimate, or the
    /// capability is off).
    fn maybe_reoptimize(
        &self,
        sel: &SelectStmt,
        shape: &str,
        types: &[SqlType],
        key: &PlanCacheKey,
        version: u64,
        cached: &CachedPlan,
    ) -> Result<Option<ResolvedPlan>> {
        if cached.estimates.is_empty()
            || !self.state.optimizer.profile().has(Capability::CostBasedJoinOrdering)
        {
            return Ok(None);
        }
        let store = QueryStore::global();
        if !store.enabled() {
            return Ok(None);
        }
        let Some(observed) = store.observed(cached.digest) else {
            return Ok(None);
        };
        let Some((ratio, node)) =
            feedback::worst_misestimate(&cached.estimates, &observed.node_rows)
        else {
            return Ok(None);
        };
        if ratio <= feedback::REOPT_WORST_RATIO_THRESHOLD {
            return Ok(None);
        }
        let _sp = qtrace::span("reoptimize");
        qtrace::attr("worst_ratio", format_args!("{ratio:.1}"));
        qtrace::attr("node", node);
        let overrides = feedback::overrides_from_observed(&cached.plan, &observed.node_rows);
        let (plan, trace) = self.bind_and_optimize(sel, types, Some(&overrides))?;
        let digest = vdm_plan::plan_digest_canonical(&plan);
        qtrace::attr("digest", format_args!("{digest:016x}"));
        // Estimates for the new entry are computed *with* the overrides, so
        // they agree with the observed history and the loop settles: the
        // next hit sees est ≈ act and keeps the corrected plan.
        let estimates = self.estimate_nodes(&plan, Some(&overrides));
        MetricsRegistry::global().inc(names::REOPTIMIZATIONS_TOTAL, 1);
        self.plan_cache.insert(
            key.clone(),
            Arc::new(CachedPlan {
                plan: plan.clone(),
                trace: trace.clone(),
                version,
                digest,
                estimates: estimates.clone(),
            }),
        );
        Ok(Some(ResolvedPlan {
            plan,
            trace,
            outcome: CacheOutcome::Miss,
            digest,
            shape: shape.to_string(),
            estimates,
        }))
    }

    fn bind_and_optimize(
        &self,
        sel: &SelectStmt,
        param_types: &[SqlType],
        overrides: Option<&CardOverrides>,
    ) -> Result<(PlanRef, Trace)> {
        let bound = {
            let _bind = qtrace::span("bind");
            self.state.binder().with_param_types(param_types).bind_select(sel)?
        };
        let _opt = qtrace::span("optimize");
        let stats = EngineStats::new(self.engine);
        self.state.optimizer.optimize_traced_with(&bound, Some(&stats), overrides)
    }

    /// Per-node estimates of an optimized plan against current storage
    /// statistics (plus any feedback overrides).
    fn estimate_nodes(&self, plan: &PlanRef, overrides: Option<&CardOverrides>) -> Vec<(u32, u64)> {
        let stats = EngineStats::new(self.engine);
        let opts = self.state.optimizer.profile().derive_options();
        feedback::estimates_with(plan, &stats, opts, overrides)
    }

    /// The full SELECT pipeline: plan resolution, parameter substitution,
    /// parallel execution, metrics.
    pub fn run_select(
        &self,
        sel: &SelectStmt,
        shape: Option<&str>,
        params: &[Value],
    ) -> Result<Batch> {
        let resolved = self.select_plan(sel, shape, params)?;
        execute_select(&resolved, params, self.engine, self.parallel)
    }

    /// EXPLAIN ANALYZE through the cached path; the header reports whether
    /// the plan came from the cache.
    pub fn explain_analyze_select(
        &self,
        sel: &SelectStmt,
        shape: Option<&str>,
        params: &[Value],
    ) -> Result<String> {
        let resolved = self.select_plan(sel, shape, params)?;
        explain_analyze_bound(&resolved, params, self.engine, self.parallel)
    }
}

/// Executes a resolved (possibly parameterized) plan: splices `params` in,
/// runs it on the morsel executor, and records query metrics plus (when
/// enabled) the per-digest [`QueryStore`] history. Needs no access to
/// [`DbState`] — a serving layer calls this after releasing its state
/// lock. With the store enabled, execution runs the profiled path so
/// per-node `rows_out` lands in the digest history, and executions over
/// the store's slow threshold capture their full EXPLAIN ANALYZE text.
pub fn execute_select(
    resolved: &ResolvedPlan,
    params: &[Value],
    engine: &StorageEngine,
    parallel: ParallelConfig,
) -> Result<Batch> {
    let _sp = qtrace::span("execute");
    let bound = vdm_plan::bind_params(&resolved.plan, params)?;
    let store = QueryStore::global();
    let start = Instant::now();
    let (batch, metrics, profile) = if store.enabled() {
        let (batch, metrics, profile) =
            vdm_exec::execute_profiled_at(&bound, engine, engine.snapshot(), parallel)?;
        (batch, metrics, Some(profile))
    } else {
        let (batch, metrics) =
            vdm_exec::execute_parallel_at(&bound, engine, engine.snapshot(), parallel)?;
        (batch, metrics, None)
    };
    let elapsed = start.elapsed();
    record_query(&metrics, &resolved.trace, elapsed);
    qtrace::attr("rows", batch.num_rows());
    qtrace::attr("workers", parallel.threads.max(1));
    if let Some(profile) = profile {
        let elapsed_nanos = elapsed.as_nanos() as u64;
        let explain = if elapsed_nanos >= store.slow_threshold_nanos() {
            let index = NodeIndex::new(&bound);
            Some(render_explain_analyze(
                &bound,
                &index,
                &profile,
                &resolved.estimates,
                &resolved.trace,
                resolved.outcome,
                &metrics,
                batch.num_rows(),
                elapsed_nanos,
                parallel.threads.max(1),
            ))
        } else {
            None
        };
        store.record(exec_record(
            resolved,
            &metrics,
            &profile,
            &batch,
            elapsed_nanos,
            parallel,
            explain,
        ));
    }
    Ok(batch)
}

/// Builds the store record for one finished execution.
#[allow(clippy::too_many_arguments)]
fn exec_record(
    resolved: &ResolvedPlan,
    metrics: &Metrics,
    profile: &QueryProfile,
    batch: &Batch,
    latency_nanos: u64,
    parallel: ParallelConfig,
    explain: Option<String>,
) -> ExecRecord {
    ExecRecord {
        digest: resolved.digest,
        shape: resolved.shape.clone(),
        latency_nanos,
        rows_in: metrics.rows_scanned as u64,
        rows_out: batch.num_rows() as u64,
        cache_hit: resolved.outcome == CacheOutcome::Hit,
        workers: parallel.threads.max(1) as u32,
        node_rows: profile.nodes.iter().map(|(id, s)| (*id as u32, s.rows_out)).collect(),
        node_est: resolved.estimates.clone(),
        explain,
    }
}

/// EXPLAIN ANALYZE over a resolved plan: profiled execution plus the
/// annotated rendering. The resolved plan's cache outcome feeds the
/// `[plan cache: ...]` header token; the execution is recorded into the
/// [`QueryStore`] like any other (with the rendered text attached, so a
/// slow EXPLAIN ANALYZE also lands in the slow-query log).
pub fn explain_analyze_bound(
    resolved: &ResolvedPlan,
    params: &[Value],
    engine: &StorageEngine,
    parallel: ParallelConfig,
) -> Result<String> {
    let _sp = qtrace::span("execute");
    let bound = vdm_plan::bind_params(&resolved.plan, params)?;
    let index = NodeIndex::new(&bound);
    let start = Instant::now();
    let (batch, metrics, profile) =
        vdm_exec::execute_profiled_at(&bound, engine, engine.snapshot(), parallel)?;
    let elapsed = start.elapsed();
    record_query(&metrics, &resolved.trace, elapsed);
    qtrace::attr("rows", batch.num_rows());
    let text = render_explain_analyze(
        &bound,
        &index,
        &profile,
        &resolved.estimates,
        &resolved.trace,
        resolved.outcome,
        &metrics,
        batch.num_rows(),
        elapsed.as_nanos() as u64,
        parallel.threads.max(1),
    );
    let store = QueryStore::global();
    if store.enabled() {
        let nanos = elapsed.as_nanos() as u64;
        store.record(exec_record(
            resolved,
            &metrics,
            &profile,
            &batch,
            nanos,
            parallel,
            Some(text.clone()),
        ));
    }
    Ok(text)
}

/// Renders the full EXPLAIN ANALYZE text from an already-collected
/// profile — shared by [`explain_analyze_bound`] and the slow-query
/// capture path (which must not re-run the query to describe it).
#[allow(clippy::too_many_arguments)]
fn render_explain_analyze(
    bound: &PlanRef,
    index: &NodeIndex,
    profile: &QueryProfile,
    estimates: &[(u32, u64)],
    trace: &Trace,
    outcome: CacheOutcome,
    metrics: &Metrics,
    rows_returned: usize,
    elapsed_nanos: u64,
    threads: usize,
) -> String {
    let annotated = render_analyzed(bound, index, profile, estimates);
    let observed: Vec<(u32, f64)> =
        profile.nodes.iter().map(|(id, s)| (*id as u32, s.rows_out as f64)).collect();
    let misestimate = feedback::worst_misestimate(estimates, &observed)
        .filter(|(ratio, _)| *ratio >= 1.05)
        .map(|(ratio, node)| format!("[misestimate: worst \u{d7}{ratio:.1} at node #{node}]\n"))
        .unwrap_or_default();
    format!(
        "== EXPLAIN ANALYZE ({} thread(s)) [plan cache: {}] ==\n{}{}\n{}== rewrite trace ==\n{}== execution summary ==\n{} row(s) returned, elapsed time={}\nrows scanned: {}, join probe rows: {}, rows joined: {}, operators: {}\n",
        threads,
        outcome.label(),
        misestimate,
        trace.render_opt_stats(),
        annotated,
        trace.render_events(),
        rows_returned,
        fmt_nanos(elapsed_nanos),
        metrics.rows_scanned,
        metrics.join_probe_rows,
        metrics.join_output_rows,
        metrics.operators,
    )
}

/// Renders `plan` with one `[#id est=... act=... time=...]` annotation per
/// node (plain `rows=` when no estimate exists for the node), deriving
/// each operator's input rows from its children's recorded output.
fn render_analyzed(
    plan: &PlanRef,
    index: &NodeIndex,
    profile: &QueryProfile,
    estimates: &[(u32, u64)],
) -> String {
    let est: std::collections::HashMap<u32, u64> = estimates.iter().copied().collect();
    vdm_plan::explain_annotated(plan, &|node| {
        let id = index.id_of(node)?;
        Some(match profile.nodes.get(&id) {
            Some(s) => {
                let children = node.children();
                let mut note = match est.get(&(id as u32)) {
                    Some(e) => format!("[#{id} est={e} act={}", s.rows_out),
                    None => format!("[#{id} rows={}", s.rows_out),
                };
                if !children.is_empty() {
                    let rows_in: u64 = children
                        .iter()
                        .filter_map(|c| index.id_of(c).and_then(|cid| profile.rows_out(cid)))
                        .sum();
                    note.push_str(&format!(" in={rows_in}"));
                }
                note.push_str(&format!(" time={} calls={}", fmt_nanos(s.nanos), s.invocations));
                if s.workers > 1 {
                    note.push_str(&format!(" workers={}", s.workers));
                }
                note.push(']');
                note
            }
            // LIMIT budgets can satisfy a query before some subtrees run.
            None => format!("[#{id} not executed]"),
        })
    })
}

/// Feeds one query's counters into the process-wide metrics registry.
pub(crate) fn record_query(metrics: &Metrics, trace: &Trace, elapsed: std::time::Duration) {
    let reg = MetricsRegistry::global();
    reg.inc(names::QUERIES_TOTAL, 1);
    reg.observe(names::QUERY_SECONDS, elapsed.as_secs_f64());
    reg.observe(names::OPTIMIZE_SECONDS, trace.optimize_nanos as f64 / 1e9);
    reg.inc(names::ROWS_SCANNED_TOTAL, metrics.rows_scanned as u64);
    reg.inc(names::ROWS_JOINED_TOTAL, metrics.join_output_rows as u64);
    reg.inc(names::MORSEL_STEALS_TOTAL, metrics.morsel_steals as u64);
    reg.inc(names::MORSEL_SIZE_BYTES, metrics.morsel_bytes as u64);
    for (rule, n) in trace.hit_counts() {
        reg.inc(&vdm_obs::registry::label(names::REWRITE_FIRED_TOTAL, "rule", &rule), n);
    }
}

/// `1234` → `"1.23us"`: human-readable nanosecond counts.
pub(crate) fn fmt_nanos(n: u64) -> String {
    if n >= 1_000_000_000 {
        format!("{:.2}s", n as f64 / 1e9)
    } else if n >= 1_000_000 {
        format!("{:.2}ms", n as f64 / 1e6)
    } else if n >= 1_000 {
        format!("{:.2}us", n as f64 / 1e3)
    } else {
        format!("{n}ns")
    }
}
