//! A bounded LRU cache of optimized, parameterized plans.
//!
//! The serving layer's hot path is many sessions re-issuing the same
//! statement *shapes* with different parameter values. Parse + bind +
//! optimize is pure given (statement shape, capability profile, parameter
//! types, catalog version), so the optimized plan — with
//! [`Expr::Param`](vdm_expr::Expr) placeholders still in it — is cached
//! once and each execution only pays a cheap parameter substitution
//! ([`vdm_plan::bind_params`]).
//!
//! Keys are [`PlanCacheKey`]: the lexer-level canonical statement shape
//! (see [`vdm_sql::canonical_shape`]), the optimizer profile fingerprint,
//! and the parameter type signature. Entries are stamped with the
//! [`DbState`](crate::DbState) metadata version they were optimized under;
//! a stamp mismatch on lookup is treated as a miss and the stale entry is
//! dropped, which is how DDL invalidates the cache without enumerating
//! affected statements.
//!
//! All methods take `&self` (one internal mutex), and the cache reports
//! `vdm_plan_cache_{hits,misses,evictions}_total` to the process-wide
//! metrics registry as well as per-instance [`PlanCacheStats`].

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use vdm_obs::{names, MetricsRegistry};
use vdm_optimizer::Trace;
use vdm_plan::PlanRef;
use vdm_types::SqlType;

/// What a cached plan is keyed by. Two statements share an entry exactly
/// when they lex to the same canonical shape, run under the same profile,
/// and are invoked with the same parameter types.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PlanCacheKey {
    /// Canonical token rendering of the statement ([`vdm_sql::canonical_shape`]).
    pub shape: String,
    /// Profile fingerprint ([`crate::DbState::profile_fingerprint`]).
    pub profile: String,
    /// Runtime types of the parameter values, in placeholder order.
    pub param_types: Vec<SqlType>,
}

/// An optimized plan plus the context needed to reuse it.
pub struct CachedPlan {
    /// Optimized plan, possibly still containing `Expr::Param` leaves.
    pub plan: PlanRef,
    /// The optimizer trace from the original optimization (replayed into
    /// metrics/EXPLAIN on every reuse).
    pub trace: Trace,
    /// Metadata version the plan was optimized under.
    pub version: u64,
    /// `vdm_plan::plan_digest_canonical` of the plan, cached so hits
    /// don't re-hash (it keys the query store's per-shape history).
    pub digest: u64,
    /// Per-node cardinality estimates (pre-order node id → estimated
    /// rows) computed when the plan was optimized; compared against
    /// observed rows from the query store to decide re-optimization.
    pub estimates: Vec<(u32, u64)>,
}

/// Hit/miss/eviction counters for one cache instance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlanCacheStats {
    pub hits: u64,
    pub misses: u64,
    pub evictions: u64,
}

impl PlanCacheStats {
    /// Hits over lookups (0.0 when no lookups happened).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct Entry {
    cached: Arc<CachedPlan>,
    last_used: u64,
}

struct Inner {
    map: HashMap<PlanCacheKey, Entry>,
    tick: u64,
}

/// Bounded, internally synchronized LRU plan cache.
pub struct PlanCache {
    capacity: usize,
    inner: Mutex<Inner>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl PlanCache {
    /// A cache holding at most `capacity` plans. `capacity == 0` disables
    /// caching entirely (every lookup is a miss, inserts are dropped) —
    /// the baseline mode benches compare against.
    pub fn new(capacity: usize) -> PlanCache {
        PlanCache {
            capacity,
            inner: Mutex::new(Inner { map: HashMap::new(), tick: 0 }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// The always-miss cache (capacity 0).
    pub fn disabled() -> PlanCache {
        PlanCache::new(0)
    }

    /// Maximum number of entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().map.len()
    }

    /// True when no entries are cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// This instance's counters.
    pub fn stats(&self) -> PlanCacheStats {
        PlanCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }

    /// Looks up `key`. An entry stamped with a version other than
    /// `current_version` is stale (some DDL happened since): it is removed
    /// and the lookup misses.
    pub fn get(&self, key: &PlanCacheKey, current_version: u64) -> Option<Arc<CachedPlan>> {
        let hit = if self.capacity == 0 {
            None
        } else {
            let mut inner = self.inner.lock().unwrap();
            match inner.map.get(key) {
                Some(e) if e.cached.version == current_version => {
                    let cached = Arc::clone(&e.cached);
                    inner.tick += 1;
                    let tick = inner.tick;
                    inner.map.get_mut(key).unwrap().last_used = tick;
                    Some(cached)
                }
                Some(_) => {
                    inner.map.remove(key);
                    None
                }
                None => None,
            }
        };
        match &hit {
            Some(_) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                MetricsRegistry::global().inc(names::PLAN_CACHE_HITS_TOTAL, 1);
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                MetricsRegistry::global().inc(names::PLAN_CACHE_MISSES_TOTAL, 1);
            }
        }
        hit
    }

    /// Inserts (or replaces) an entry, evicting the least recently used
    /// one when at capacity.
    pub fn insert(&self, key: PlanCacheKey, cached: Arc<CachedPlan>) {
        if self.capacity == 0 {
            return;
        }
        let mut inner = self.inner.lock().unwrap();
        if !inner.map.contains_key(&key) && inner.map.len() >= self.capacity {
            if let Some(lru) =
                inner.map.iter().min_by_key(|(_, e)| e.last_used).map(|(k, _)| k.clone())
            {
                inner.map.remove(&lru);
                self.evictions.fetch_add(1, Ordering::Relaxed);
                MetricsRegistry::global().inc(names::PLAN_CACHE_EVICTIONS_TOTAL, 1);
            }
        }
        inner.tick += 1;
        let tick = inner.tick;
        inner.map.insert(key, Entry { cached, last_used: tick });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use vdm_catalog::TableBuilder;
    use vdm_plan::LogicalPlan;

    fn key(shape: &str) -> PlanCacheKey {
        PlanCacheKey { shape: shape.into(), profile: "p".into(), param_types: vec![] }
    }

    fn plan() -> Arc<CachedPlan> {
        let scan = LogicalPlan::scan(Arc::new(
            TableBuilder::new("t").column("k", SqlType::Int, false).build().unwrap(),
        ));
        Arc::new(CachedPlan {
            plan: scan,
            trace: Trace::default(),
            version: 0,
            digest: 0,
            estimates: vec![],
        })
    }

    #[test]
    fn lru_evicts_and_versions_invalidate() {
        let cache = PlanCache::new(2);
        assert!(cache.get(&key("a"), 0).is_none());
        cache.insert(key("a"), plan());
        cache.insert(key("b"), plan());
        assert!(cache.get(&key("a"), 0).is_some());
        // "b" is now least recently used; inserting "c" evicts it.
        cache.insert(key("c"), plan());
        assert_eq!(cache.len(), 2);
        assert!(cache.get(&key("b"), 0).is_none());
        assert!(cache.get(&key("a"), 0).is_some());
        // A version bump turns the hit into a miss and drops the entry.
        assert!(cache.get(&key("a"), 1).is_none());
        assert_eq!(cache.len(), 1);
        let stats = cache.stats();
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.hits, 2);
        assert_eq!(stats.misses, 3);
        assert!((stats.hit_rate() - 0.4).abs() < 1e-9);
    }

    #[test]
    fn capacity_zero_never_caches() {
        let cache = PlanCache::disabled();
        cache.insert(key("a"), plan());
        assert!(cache.get(&key("a"), 0).is_none());
        assert!(cache.is_empty());
        assert_eq!(cache.stats().hits, 0);
    }

    #[test]
    fn keys_distinguish_profile_and_param_types() {
        let cache = PlanCache::new(8);
        cache.insert(key("s"), plan());
        let other_profile =
            PlanCacheKey { shape: "s".into(), profile: "q".into(), param_types: vec![] };
        let other_types = PlanCacheKey {
            shape: "s".into(),
            profile: "p".into(),
            param_types: vec![SqlType::Text],
        };
        assert!(cache.get(&key("s"), 0).is_some());
        assert!(cache.get(&other_profile, 0).is_none());
        assert!(cache.get(&other_types, 0).is_none());
    }
}
