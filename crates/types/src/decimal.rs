//! Exact fixed-point decimal arithmetic.
//!
//! [`Decimal`] stores `units * 10^-scale` in an `i128`. Business
//! applications round money amounts with *commercial rounding*
//! (round-half-away-from-zero), which is what [`Decimal::round_to`]
//! implements. The maximum supported scale is [`MAX_SCALE`]; with money
//! amounts bounded far below `i64::MAX` this leaves ample headroom in
//! `i128` for cross-scale comparisons and multiplication.

use crate::error::{Result, VdmError};
use std::cmp::Ordering;
use std::fmt;
use std::str::FromStr;

/// Largest supported decimal scale (digits after the decimal point).
pub const MAX_SCALE: u8 = 18;

const POW10: [i128; 19] = [
    1,
    10,
    100,
    1_000,
    10_000,
    100_000,
    1_000_000,
    10_000_000,
    100_000_000,
    1_000_000_000,
    10_000_000_000,
    100_000_000_000,
    1_000_000_000_000,
    10_000_000_000_000,
    100_000_000_000_000,
    1_000_000_000_000_000,
    10_000_000_000_000_000,
    100_000_000_000_000_000,
    1_000_000_000_000_000_000,
];

#[inline]
fn pow10(scale: u8) -> i128 {
    POW10[scale as usize]
}

/// An exact fixed-point decimal: `units * 10^-scale`.
#[derive(Debug, Clone, Copy)]
pub struct Decimal {
    units: i128,
    scale: u8,
}

impl std::hash::Hash for Decimal {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        // Hash the canonical form so cross-scale equal values (1.5 == 1.50)
        // hash identically, as Eq requires.
        let (units, scale) = self.canonical();
        units.hash(state);
        scale.hash(state);
    }
}

impl Decimal {
    /// Builds a decimal from raw scaled units. `units = 1995, scale = 2`
    /// represents `19.95`.
    pub fn from_units(units: i128, scale: u8) -> Self {
        debug_assert!(scale <= MAX_SCALE, "scale {scale} exceeds MAX_SCALE");
        Decimal { units, scale }
    }

    /// Builds a whole-number decimal with scale 0.
    pub fn from_int(v: i64) -> Self {
        Decimal { units: v as i128, scale: 0 }
    }

    /// Raw scaled units.
    pub fn units(&self) -> i128 {
        self.units
    }

    /// Digits after the decimal point.
    pub fn scale(&self) -> u8 {
        self.scale
    }

    /// The zero value at the given scale.
    pub fn zero(scale: u8) -> Self {
        Decimal { units: 0, scale }
    }

    /// True if the value is exactly zero (at any scale).
    pub fn is_zero(&self) -> bool {
        self.units == 0
    }

    /// Changes the scale, rounding (commercially) if the scale shrinks.
    ///
    /// Widening the scale is exact; narrowing applies
    /// round-half-away-from-zero, matching [`Decimal::round_to`].
    pub fn rescale(&self, scale: u8) -> Result<Decimal> {
        if scale > MAX_SCALE {
            return Err(VdmError::Overflow(format!("decimal scale {scale} too large")));
        }
        match scale.cmp(&self.scale) {
            Ordering::Equal => Ok(*self),
            Ordering::Greater => {
                let factor = pow10(scale - self.scale);
                let units = self
                    .units
                    .checked_mul(factor)
                    .ok_or_else(|| VdmError::Overflow("decimal rescale overflow".into()))?;
                Ok(Decimal { units, scale })
            }
            Ordering::Less => Ok(self.round_to(scale)),
        }
    }

    /// Commercial rounding (round-half-away-from-zero) to `scale` digits.
    ///
    /// This is the rounding mode business applications use for tax and
    /// currency amounts: `13.1945.round_to(2) == 13.19`,
    /// `0.5.round_to(0) == 1`, `(-0.5).round_to(0) == -1`.
    pub fn round_to(&self, scale: u8) -> Decimal {
        if scale >= self.scale {
            // Widening never needs rounding; keep exactness, adopt scale lazily.
            return self.rescale(scale).unwrap_or(Decimal { units: self.units, scale: self.scale });
        }
        let factor = pow10(self.scale - scale);
        let q = self.units / factor;
        let r = self.units % factor;
        let half = factor / 2;
        let units = if r.abs() >= half {
            if self.units >= 0 {
                q + 1
            } else {
                q - 1
            }
        } else {
            q
        };
        Decimal { units, scale }
    }

    /// Checked addition; the result takes the wider scale.
    pub fn checked_add(&self, other: &Decimal) -> Result<Decimal> {
        let scale = self.scale.max(other.scale);
        let a = self.rescale(scale)?;
        let b = other.rescale(scale)?;
        let units = a
            .units
            .checked_add(b.units)
            .ok_or_else(|| VdmError::Overflow("decimal add overflow".into()))?;
        Ok(Decimal { units, scale })
    }

    /// Checked subtraction; the result takes the wider scale.
    pub fn checked_sub(&self, other: &Decimal) -> Result<Decimal> {
        self.checked_add(&other.negate())
    }

    /// Checked multiplication; scales add, then the result is clamped back
    /// to [`MAX_SCALE`] by commercial rounding when it would exceed it.
    pub fn checked_mul(&self, other: &Decimal) -> Result<Decimal> {
        let units = self
            .units
            .checked_mul(other.units)
            .ok_or_else(|| VdmError::Overflow("decimal mul overflow".into()))?;
        let scale = self.scale + other.scale;
        let out = Decimal { units, scale: scale.min(MAX_SCALE) };
        if scale > MAX_SCALE {
            // The intermediate had a deeper scale than supported; rescale it
            // exactly by division with rounding.
            let factor = pow10(scale - MAX_SCALE);
            let q = units / factor;
            let r = units % factor;
            let half = factor / 2;
            let adj = if r.abs() >= half {
                if units >= 0 {
                    1
                } else {
                    -1
                }
            } else {
                0
            };
            return Ok(Decimal { units: q + adj, scale: MAX_SCALE });
        }
        Ok(out)
    }

    /// Checked division producing a result with `result_scale` digits and
    /// commercial rounding of the final digit.
    pub fn checked_div(&self, other: &Decimal, result_scale: u8) -> Result<Decimal> {
        if other.units == 0 {
            return Err(VdmError::Exec("division by zero".into()));
        }
        if result_scale > MAX_SCALE {
            return Err(VdmError::Overflow("division result scale too large".into()));
        }
        // numerator * 10^(result_scale + other.scale - self.scale) / other.units
        let shift = result_scale as i32 + other.scale as i32 - self.scale as i32;
        let mut num = self.units;
        if shift > 0 {
            num = num
                .checked_mul(pow10(shift as u8))
                .ok_or_else(|| VdmError::Overflow("decimal div overflow".into()))?;
        }
        let den = other.units;
        let (mut num, den) =
            if shift < 0 { (num / pow10((-shift) as u8), den) } else { (num, den) };
        let q = num / den;
        let r = num % den;
        // Round half away from zero on the remainder.
        num = q;
        if r.abs() * 2 >= den.abs() {
            if (self.units >= 0) == (other.units >= 0) {
                num += 1;
            } else {
                num -= 1;
            }
        }
        Ok(Decimal { units: num, scale: result_scale })
    }

    /// Canonical `(units, scale)`: trailing zero digits stripped (zero
    /// normalizes to scale 0). Equal values share one canonical form.
    fn canonical(&self) -> (i128, u8) {
        if self.units == 0 {
            return (0, 0);
        }
        let mut units = self.units;
        let mut scale = self.scale;
        while scale > 0 && units % 10 == 0 {
            units /= 10;
            scale -= 1;
        }
        (units, scale)
    }

    /// Negation.
    pub fn negate(&self) -> Decimal {
        Decimal { units: -self.units, scale: self.scale }
    }

    /// Lossy conversion to `f64` (display/benchmark reporting only — never
    /// used inside exact arithmetic).
    pub fn to_f64(&self) -> f64 {
        self.units as f64 / pow10(self.scale) as f64
    }
}

impl PartialEq for Decimal {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Decimal {}

impl PartialOrd for Decimal {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Decimal {
    fn cmp(&self, other: &Self) -> Ordering {
        let scale = self.scale.max(other.scale);
        // Scales are bounded by MAX_SCALE and business magnitudes fit in
        // ~i64, so widening multiplication cannot overflow i128 in practice;
        // fall back to sign/f64 comparison if it ever would.
        let a = self.units.checked_mul(pow10(scale - self.scale));
        let b = other.units.checked_mul(pow10(scale - other.scale));
        match (a, b) {
            (Some(a), Some(b)) => a.cmp(&b),
            _ => self.to_f64().partial_cmp(&other.to_f64()).unwrap_or(Ordering::Equal),
        }
    }
}

impl fmt::Display for Decimal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.scale == 0 {
            return write!(f, "{}", self.units);
        }
        let factor = pow10(self.scale);
        let sign = if self.units < 0 { "-" } else { "" };
        let abs = self.units.unsigned_abs();
        let int = abs / factor.unsigned_abs();
        let frac = abs % factor.unsigned_abs();
        write!(f, "{sign}{int}.{frac:0width$}", width = self.scale as usize)
    }
}

impl FromStr for Decimal {
    type Err = VdmError;

    fn from_str(s: &str) -> Result<Decimal> {
        let s = s.trim();
        let (neg, body) = match s.strip_prefix('-') {
            Some(rest) => (true, rest),
            None => (false, s.strip_prefix('+').unwrap_or(s)),
        };
        let (int_part, frac_part) = match body.split_once('.') {
            Some((i, fr)) => (i, fr),
            None => (body, ""),
        };
        if int_part.is_empty() && frac_part.is_empty() {
            return Err(VdmError::Parse(format!("invalid decimal literal: {s:?}")));
        }
        if frac_part.len() > MAX_SCALE as usize {
            return Err(VdmError::Parse(format!(
                "decimal literal {s:?} exceeds max scale {MAX_SCALE}"
            )));
        }
        let digits_ok = int_part.chars().all(|c| c.is_ascii_digit())
            && frac_part.chars().all(|c| c.is_ascii_digit());
        if !digits_ok {
            return Err(VdmError::Parse(format!("invalid decimal literal: {s:?}")));
        }
        let scale = frac_part.len() as u8;
        let mut units: i128 = 0;
        for c in int_part.chars().chain(frac_part.chars()) {
            units = units
                .checked_mul(10)
                .and_then(|u| u.checked_add((c as u8 - b'0') as i128))
                .ok_or_else(|| VdmError::Overflow(format!("decimal literal {s:?} overflows")))?;
        }
        if neg {
            units = -units;
        }
        Ok(Decimal { units, scale })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dec(s: &str) -> Decimal {
        s.parse().unwrap()
    }

    #[test]
    fn parse_and_display_round_trip() {
        for s in ["0.00", "19.95", "-13.19", "100", "-0.5", "0.001"] {
            assert_eq!(dec(s).to_string(), s);
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Decimal::from_str("abc").is_err());
        assert!(Decimal::from_str("1.2.3").is_err());
        assert!(Decimal::from_str("").is_err());
        assert!(Decimal::from_str(".").is_err());
        assert!(Decimal::from_str("1e5").is_err());
    }

    #[test]
    fn paper_tax_example() {
        // An 11% tax on a $119.95 item calculates to $13.1945, rounded to $13.19.
        let price = dec("119.95");
        let tax = price.checked_mul(&dec("0.11")).unwrap();
        assert_eq!(tax.to_string(), "13.1945");
        assert_eq!(tax.round_to(2).to_string(), "13.19");
    }

    #[test]
    fn rounding_is_not_interchangeable_with_addition() {
        // round(1.3) + round(2.4) = 1 + 2 = 3, but round(1.3 + 2.4) = round(3.7) = 4.
        let a = dec("1.3");
        let b = dec("2.4");
        let rounded_first = a.round_to(0).checked_add(&b.round_to(0)).unwrap();
        let added_first = a.checked_add(&b).unwrap().round_to(0);
        assert_eq!(rounded_first, Decimal::from_int(3));
        assert_eq!(added_first, Decimal::from_int(4));
        assert_ne!(rounded_first, added_first);
    }

    #[test]
    fn commercial_rounding_half_away_from_zero() {
        assert_eq!(dec("0.5").round_to(0), Decimal::from_int(1));
        assert_eq!(dec("-0.5").round_to(0), Decimal::from_int(-1));
        assert_eq!(dec("2.45").round_to(1).to_string(), "2.5");
        assert_eq!(dec("-2.45").round_to(1).to_string(), "-2.5");
        assert_eq!(dec("2.44").round_to(1).to_string(), "2.4");
    }

    #[test]
    fn cross_scale_comparison() {
        assert_eq!(dec("1.50"), dec("1.5"));
        assert!(dec("1.51") > dec("1.5"));
        assert!(dec("-2") < dec("1.99"));
        assert_eq!(dec("0"), dec("0.000"));
    }

    #[test]
    fn add_sub_mul_div() {
        assert_eq!(dec("1.25").checked_add(&dec("2.5")).unwrap().to_string(), "3.75");
        assert_eq!(dec("1.25").checked_sub(&dec("2.5")).unwrap().to_string(), "-1.25");
        assert_eq!(dec("1.5").checked_mul(&dec("2.0")).unwrap().to_string(), "3.00");
        assert_eq!(dec("1").checked_div(&dec("3"), 4).unwrap().to_string(), "0.3333");
        assert_eq!(dec("2").checked_div(&dec("3"), 2).unwrap().to_string(), "0.67");
        assert!(dec("1").checked_div(&Decimal::zero(0), 2).is_err());
    }

    #[test]
    fn rescale_widens_exactly_and_narrows_with_rounding() {
        assert_eq!(dec("1.5").rescale(3).unwrap().units(), 1500);
        assert_eq!(dec("1.567").rescale(1).unwrap().to_string(), "1.6");
    }

    #[test]
    fn mul_overflow_detected() {
        let big = Decimal::from_units(i128::MAX / 2, 0);
        assert!(big.checked_mul(&Decimal::from_int(3)).is_err());
    }

    #[test]
    fn equal_values_hash_identically() {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let h = |d: &Decimal| {
            let mut s = DefaultHasher::new();
            d.hash(&mut s);
            s.finish()
        };
        let pairs = [("1.5", "1.50"), ("0", "0.000"), ("-2.40", "-2.4"), ("100", "100.00")];
        for (a, b) in pairs {
            let (da, db): (Decimal, Decimal) = (a.parse().unwrap(), b.parse().unwrap());
            assert_eq!(da, db);
            assert_eq!(h(&da), h(&db), "{a} vs {b}");
        }
    }

    #[test]
    fn div_rounding_sign_handling() {
        assert_eq!(dec("-1").checked_div(&dec("3"), 2).unwrap().to_string(), "-0.33");
        assert_eq!(dec("-2").checked_div(&dec("3"), 2).unwrap().to_string(), "-0.67");
        assert_eq!(dec("1").checked_div(&dec("-3"), 2).unwrap().to_string(), "-0.33");
    }
}
