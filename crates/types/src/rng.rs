//! Deterministic in-repo pseudo-random numbers.
//!
//! The workspace must build with zero network access, so the data
//! generators and randomized tests cannot depend on the external `rand`
//! crate. [`SplitMix64`] (Steele, Lea & Flood, OOPSLA 2014) is a tiny,
//! well-studied 64-bit generator: one add and three xor-shift-multiply
//! steps per draw, full 2^64 period, and excellent statistical quality for
//! data-generation purposes. The same seed always produces the same
//! sequence on every platform — a hard requirement for the reproduction's
//! "same parameters, same rows" contract.

/// SplitMix64 pseudo-random generator.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Generator seeded with `seed` (mirrors `rand`'s `seed_from_u64`).
    pub fn seed_from_u64(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from an integer range (`lo..hi` or `lo..=hi`).
    ///
    /// Panics on an empty range, like `rand`. Uses multiply-shift
    /// reduction; the modulo bias over a 64-bit draw is negligible for the
    /// range widths the generators use.
    pub fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample(self)
    }

    /// Uniform draw in `[0, 1)` with 53 bits of precision.
    pub fn random_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Draw within `[0, bound)` (64-bit Lemire-style reduction).
    fn bounded(&mut self, bound: u128) -> u128 {
        debug_assert!(bound > 0);
        // Two draws give 128 bits; the high multiply maps them uniformly
        // enough into [0, bound) for data generation (bias < 2^-64).
        let wide = ((self.next_u64() as u128) << 64) | self.next_u64() as u128;
        // (wide * bound) >> 128 without overflow: split the multiply.
        let hi = (wide >> 64) * bound;
        let lo = ((wide & u64::MAX as u128) * bound) >> 64;
        (hi + lo) >> 64
    }
}

/// Ranges [`SplitMix64::random_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample(self, rng: &mut SplitMix64) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample(self, rng: &mut SplitMix64) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128).wrapping_sub(self.start as i128) as u128;
                (self.start as i128 + rng.bounded(span) as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample(self, rng: &mut SplitMix64) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128).wrapping_sub(lo as i128) as u128 + 1;
                (lo as i128 + rng.bounded(span) as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(i32, i64, u32, u64, usize, i128);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = SplitMix64::seed_from_u64(42);
        let mut b = SplitMix64::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn reference_vector() {
        // First outputs of SplitMix64 seeded with 1234567 (published
        // reference implementation).
        let mut r = SplitMix64::seed_from_u64(1234567);
        assert_eq!(r.next_u64(), 6457827717110365317);
        assert_eq!(r.next_u64(), 3203168211198807973);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = SplitMix64::seed_from_u64(7);
        for _ in 0..1000 {
            let v: i64 = r.random_range(-5..20);
            assert!((-5..20).contains(&v));
            let w: usize = r.random_range(0..3);
            assert!(w < 3);
            let x: i64 = r.random_range(1..=7);
            assert!((1..=7).contains(&x));
            let y: i128 = r.random_range(0..1_000_000);
            assert!((0..1_000_000).contains(&y));
            let f = r.random_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn all_values_of_small_range_reached() {
        let mut r = SplitMix64::seed_from_u64(99);
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[r.random_range(0..5usize)] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }
}
