//! Fundamental types shared by every `vdm` crate.
//!
//! This crate defines the runtime value model ([`Value`]), the SQL type
//! system ([`SqlType`]), fixed-point decimals with commercial rounding
//! ([`Decimal`]), relation schemas ([`Schema`], [`Field`]), and the common
//! error type ([`VdmError`]).
//!
//! Decimal semantics matter for the reproduction: §7.1 of the paper relies
//! on decimal rounding *not* being interchangeable with addition
//! (`round(1.3) + round(2.4) = 3` but `round(1.3 + 2.4) = 4`), which only
//! holds under exact fixed-point arithmetic — floating point would blur the
//! discrepancy the `allow_precision_loss` extension is about.

pub mod decimal;
pub mod error;
pub mod rng;
pub mod schema;
pub mod value;

pub use decimal::Decimal;
pub use error::{Result, VdmError};
pub use rng::SplitMix64;
pub use schema::{Field, Schema};
pub use value::{SqlType, Value};
