//! Runtime values and the SQL type system.

use crate::decimal::Decimal;
use crate::error::{Result, VdmError};
use std::fmt;
use std::sync::Arc;

/// The SQL types supported by the engine.
///
/// The set is deliberately small but covers everything the paper's queries
/// need: integers for keys, exact decimals for money, text for business
/// identifiers, booleans for predicates, and dates (day-precision, stored as
/// days since 1970-01-01) for fiscal periods.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SqlType {
    Bool,
    Int,
    /// Exact fixed-point decimal with the given scale.
    Decimal {
        scale: u8,
    },
    Text,
    Date,
}

impl SqlType {
    /// True when a value of `other` can be used where `self` is expected
    /// without an explicit cast (same family; decimal scales unify).
    pub fn accepts(&self, other: &SqlType) -> bool {
        match (self, other) {
            (SqlType::Decimal { .. }, SqlType::Decimal { .. }) => true,
            (SqlType::Decimal { .. }, SqlType::Int) => true,
            (a, b) => a == b,
        }
    }

    /// The common type of two operands in arithmetic/comparison, if any.
    pub fn unify(&self, other: &SqlType) -> Option<SqlType> {
        match (self, other) {
            (a, b) if a == b => Some(*a),
            (SqlType::Decimal { scale: a }, SqlType::Decimal { scale: b }) => {
                Some(SqlType::Decimal { scale: (*a).max(*b) })
            }
            (SqlType::Int, SqlType::Decimal { scale })
            | (SqlType::Decimal { scale }, SqlType::Int) => {
                Some(SqlType::Decimal { scale: *scale })
            }
            _ => None,
        }
    }
}

impl fmt::Display for SqlType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SqlType::Bool => write!(f, "BOOLEAN"),
            SqlType::Int => write!(f, "BIGINT"),
            SqlType::Decimal { scale } => write!(f, "DECIMAL(38,{scale})"),
            SqlType::Text => write!(f, "TEXT"),
            SqlType::Date => write!(f, "DATE"),
        }
    }
}

/// A single runtime value. `Null` is typeless (SQL semantics).
#[derive(Debug, Clone)]
pub enum Value {
    Null,
    Bool(bool),
    Int(i64),
    Dec(Decimal),
    Str(Arc<str>),
    /// Days since the Unix epoch.
    Date(i32),
}

impl Value {
    /// Convenience constructor for text values.
    pub fn str(s: impl AsRef<str>) -> Value {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// True if the value is SQL NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The runtime type, if not NULL.
    pub fn sql_type(&self) -> Option<SqlType> {
        match self {
            Value::Null => None,
            Value::Bool(_) => Some(SqlType::Bool),
            Value::Int(_) => Some(SqlType::Int),
            Value::Dec(d) => Some(SqlType::Decimal { scale: d.scale() }),
            Value::Str(_) => Some(SqlType::Text),
            Value::Date(_) => Some(SqlType::Date),
        }
    }

    /// Extracts a boolean, treating NULL as `None` (SQL three-valued logic).
    pub fn as_bool(&self) -> Result<Option<bool>> {
        match self {
            Value::Null => Ok(None),
            Value::Bool(b) => Ok(Some(*b)),
            other => Err(VdmError::Type(format!("expected BOOLEAN, got {other}"))),
        }
    }

    /// Extracts an i64 or errors.
    pub fn as_int(&self) -> Result<i64> {
        match self {
            Value::Int(v) => Ok(*v),
            other => Err(VdmError::Type(format!("expected BIGINT, got {other}"))),
        }
    }

    /// Extracts a decimal, widening integers for free.
    pub fn as_dec(&self) -> Result<Decimal> {
        match self {
            Value::Dec(d) => Ok(*d),
            Value::Int(v) => Ok(Decimal::from_int(*v)),
            other => Err(VdmError::Type(format!("expected DECIMAL, got {other}"))),
        }
    }

    /// Extracts a string slice or errors.
    pub fn as_str(&self) -> Result<&str> {
        match self {
            Value::Str(s) => Ok(s),
            other => Err(VdmError::Type(format!("expected TEXT, got {other}"))),
        }
    }

    /// SQL equality: NULL = anything is unknown (`None`).
    pub fn sql_eq(&self, other: &Value) -> Option<bool> {
        if self.is_null() || other.is_null() {
            return None;
        }
        Some(self.total_cmp_non_null(other) == std::cmp::Ordering::Equal)
    }

    /// SQL ordering comparison; `None` when either side is NULL.
    pub fn sql_cmp(&self, other: &Value) -> Option<std::cmp::Ordering> {
        if self.is_null() || other.is_null() {
            return None;
        }
        Some(self.total_cmp_non_null(other))
    }

    /// Total order over *non-null* values of a unified type. Used for
    /// grouping/sorting where NULLs are handled separately by the caller.
    /// Mixed numeric types compare numerically; anything else compares by a
    /// stable cross-type rank so sorting never panics.
    pub fn total_cmp_non_null(&self, other: &Value) -> std::cmp::Ordering {
        use Value::*;
        match (self, other) {
            (Bool(a), Bool(b)) => a.cmp(b),
            (Int(a), Int(b)) => a.cmp(b),
            (Dec(a), Dec(b)) => a.cmp(b),
            (Int(a), Dec(b)) => Decimal::from_int(*a).cmp(b),
            (Dec(a), Int(b)) => a.cmp(&Decimal::from_int(*b)),
            (Str(a), Str(b)) => a.as_ref().cmp(b.as_ref()),
            (Date(a), Date(b)) => a.cmp(b),
            (a, b) => rank(a).cmp(&rank(b)),
        }
    }

    /// Total order including NULL (NULL sorts first) — used by ORDER BY and
    /// grouping keys.
    pub fn total_cmp(&self, other: &Value) -> std::cmp::Ordering {
        match (self.is_null(), other.is_null()) {
            (true, true) => std::cmp::Ordering::Equal,
            (true, false) => std::cmp::Ordering::Less,
            (false, true) => std::cmp::Ordering::Greater,
            (false, false) => self.total_cmp_non_null(other),
        }
    }
}

fn rank(v: &Value) -> u8 {
    match v {
        Value::Null => 0,
        Value::Bool(_) => 1,
        Value::Int(_) => 2,
        Value::Dec(_) => 2, // numeric family shares a rank
        Value::Date(_) => 3,
        Value::Str(_) => 4,
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.total_cmp(other) == std::cmp::Ordering::Equal
    }
}

impl Eq for Value {}

impl std::hash::Hash for Value {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => 0u8.hash(state),
            Value::Bool(b) => {
                1u8.hash(state);
                b.hash(state);
            }
            // Int and Dec must hash identically when numerically equal,
            // because total_cmp treats them as one numeric family; Decimal's
            // Hash is canonical across scales.
            Value::Int(v) => {
                2u8.hash(state);
                Decimal::from_int(*v).hash(state);
            }
            Value::Dec(d) => {
                2u8.hash(state);
                d.hash(state);
            }
            Value::Date(d) => {
                3u8.hash(state);
                d.hash(state);
            }
            Value::Str(s) => {
                4u8.hash(state);
                s.hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Bool(b) => write!(f, "{}", if *b { "TRUE" } else { "FALSE" }),
            Value::Int(v) => write!(f, "{v}"),
            Value::Dec(d) => write!(f, "{d}"),
            Value::Str(s) => write!(f, "'{s}'"),
            Value::Date(d) => write!(f, "DATE#{d}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_propagates_in_comparisons() {
        assert_eq!(Value::Null.sql_eq(&Value::Int(1)), None);
        assert_eq!(Value::Int(1).sql_eq(&Value::Null), None);
        assert_eq!(Value::Int(1).sql_eq(&Value::Int(1)), Some(true));
        assert_eq!(Value::Int(1).sql_eq(&Value::Int(2)), Some(false));
    }

    #[test]
    fn int_and_decimal_compare_numerically() {
        let d = Value::Dec("2.00".parse().unwrap());
        assert_eq!(Value::Int(2).sql_eq(&d), Some(true));
        assert_eq!(Value::Int(3).sql_cmp(&d), Some(std::cmp::Ordering::Greater));
    }

    #[test]
    fn int_and_decimal_hash_identically_when_equal() {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let h = |v: &Value| {
            let mut s = DefaultHasher::new();
            v.hash(&mut s);
            s.finish()
        };
        let a = Value::Int(42);
        let b = Value::Dec("42.000".parse().unwrap());
        assert_eq!(a, b);
        assert_eq!(h(&a), h(&b));
    }

    #[test]
    fn total_cmp_orders_null_first() {
        let mut vals = [Value::Int(2), Value::Null, Value::Int(1)];
        vals.sort_by(|a, b| a.total_cmp(b));
        assert!(vals[0].is_null());
        assert_eq!(vals[1], Value::Int(1));
    }

    #[test]
    fn type_unification() {
        assert_eq!(SqlType::Int.unify(&SqlType::Int), Some(SqlType::Int));
        assert_eq!(
            SqlType::Int.unify(&SqlType::Decimal { scale: 2 }),
            Some(SqlType::Decimal { scale: 2 })
        );
        assert_eq!(
            SqlType::Decimal { scale: 2 }.unify(&SqlType::Decimal { scale: 4 }),
            Some(SqlType::Decimal { scale: 4 })
        );
        assert_eq!(SqlType::Text.unify(&SqlType::Int), None);
    }

    #[test]
    fn accessors_enforce_types() {
        assert!(Value::str("x").as_int().is_err());
        assert_eq!(Value::Int(5).as_dec().unwrap(), Decimal::from_int(5));
        assert_eq!(Value::Null.as_bool().unwrap(), None);
        assert!(Value::Int(1).as_bool().is_err());
    }
}
