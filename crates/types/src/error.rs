//! The workspace-wide error type.

use std::fmt;

/// Convenience alias used across all `vdm` crates.
pub type Result<T> = std::result::Result<T, VdmError>;

/// Error raised anywhere in the `vdm` stack.
///
/// The variants map onto pipeline stages so callers can distinguish user
/// mistakes (parse/bind/type errors) from engine-side failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VdmError {
    /// Lexing or parsing failed. Carries a human-readable message including
    /// the offending position.
    Parse(String),
    /// Name resolution or view expansion failed.
    Bind(String),
    /// Catalog lookups or DDL failed (unknown/duplicate table, bad column).
    Catalog(String),
    /// Static type checking failed.
    Type(String),
    /// A logical-plan invariant was violated (always a bug upstream).
    Plan(String),
    /// Query optimization failed (always a bug in a rewrite rule).
    Optimize(String),
    /// Runtime execution failed (overflow, division by zero, ...).
    Exec(String),
    /// Storage-engine failure (visibility, fragment state).
    Storage(String),
    /// Arithmetic overflow in exact decimal/integer math.
    Overflow(String),
    /// Generic unsupported-feature marker.
    Unsupported(String),
}

impl VdmError {
    /// Short machine-readable category name.
    pub fn kind(&self) -> &'static str {
        match self {
            VdmError::Parse(_) => "parse",
            VdmError::Bind(_) => "bind",
            VdmError::Catalog(_) => "catalog",
            VdmError::Type(_) => "type",
            VdmError::Plan(_) => "plan",
            VdmError::Optimize(_) => "optimize",
            VdmError::Exec(_) => "exec",
            VdmError::Storage(_) => "storage",
            VdmError::Overflow(_) => "overflow",
            VdmError::Unsupported(_) => "unsupported",
        }
    }

    /// The human-readable message.
    pub fn message(&self) -> &str {
        match self {
            VdmError::Parse(m)
            | VdmError::Bind(m)
            | VdmError::Catalog(m)
            | VdmError::Type(m)
            | VdmError::Plan(m)
            | VdmError::Optimize(m)
            | VdmError::Exec(m)
            | VdmError::Storage(m)
            | VdmError::Overflow(m)
            | VdmError::Unsupported(m) => m,
        }
    }
}

impl fmt::Display for VdmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} error: {}", self.kind(), self.message())
    }
}

impl std::error::Error for VdmError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_kind_and_message() {
        let e = VdmError::Parse("unexpected token".into());
        assert_eq!(e.to_string(), "parse error: unexpected token");
        assert_eq!(e.kind(), "parse");
        assert_eq!(e.message(), "unexpected token");
    }

    #[test]
    fn all_kinds_are_distinct() {
        let kinds = [
            VdmError::Parse(String::new()).kind(),
            VdmError::Bind(String::new()).kind(),
            VdmError::Catalog(String::new()).kind(),
            VdmError::Type(String::new()).kind(),
            VdmError::Plan(String::new()).kind(),
            VdmError::Optimize(String::new()).kind(),
            VdmError::Exec(String::new()).kind(),
            VdmError::Storage(String::new()).kind(),
            VdmError::Overflow(String::new()).kind(),
            VdmError::Unsupported(String::new()).kind(),
        ];
        let set: std::collections::HashSet<_> = kinds.iter().collect();
        assert_eq!(set.len(), kinds.len());
    }
}
