//! Relation schemas: ordered, named, typed fields.

use crate::error::{Result, VdmError};
use crate::value::SqlType;
use std::fmt;
use std::sync::Arc;

/// One column of a relation schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    pub name: String,
    pub ty: SqlType,
    pub nullable: bool,
}

impl Field {
    /// Builds a field.
    pub fn new(name: impl Into<String>, ty: SqlType, nullable: bool) -> Field {
        Field { name: name.into(), ty, nullable }
    }

    /// Returns a copy of this field marked nullable — the schema adjustment
    /// applied to the inner side of an outer join.
    pub fn as_nullable(&self) -> Field {
        Field { name: self.name.clone(), ty: self.ty, nullable: true }
    }
}

/// An ordered collection of fields describing one relation's output.
///
/// Wrapped in `Arc` throughout the planner so schema sharing across a plan
/// DAG is free.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schema {
    fields: Vec<Field>,
}

/// Shared schema handle.
pub type SchemaRef = Arc<Schema>;

impl Schema {
    /// Builds a schema from fields.
    pub fn new(fields: Vec<Field>) -> Schema {
        Schema { fields }
    }

    /// The empty schema (zero columns).
    pub fn empty() -> Schema {
        Schema { fields: Vec::new() }
    }

    /// Number of fields.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// True when the schema has no fields.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// All fields in order.
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// Field at `idx`; panics if out of range (planner invariant).
    pub fn field(&self, idx: usize) -> &Field {
        &self.fields[idx]
    }

    /// Index of the first field whose name equals `name`
    /// (ASCII-case-insensitive, SQL style).
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.fields.iter().position(|f| f.name.eq_ignore_ascii_case(name))
    }

    /// Like [`Schema::index_of`] but errors with the unknown name.
    pub fn index_of_or_err(&self, name: &str) -> Result<usize> {
        self.index_of(name).ok_or_else(|| VdmError::Bind(format!("unknown column {name:?}")))
    }

    /// All indices whose name matches (detects ambiguity at bind time).
    pub fn indices_of(&self, name: &str) -> Vec<usize> {
        self.fields
            .iter()
            .enumerate()
            .filter(|(_, f)| f.name.eq_ignore_ascii_case(name))
            .map(|(i, _)| i)
            .collect()
    }

    /// Concatenates two schemas (join output), marking the right side
    /// nullable when `null_right` is set (left outer join).
    pub fn join(&self, right: &Schema, null_right: bool) -> Schema {
        let mut fields = self.fields.clone();
        for f in &right.fields {
            fields.push(if null_right { f.as_nullable() } else { f.clone() });
        }
        Schema { fields }
    }

    /// A schema containing `indices` in order (projection pruning).
    pub fn select(&self, indices: &[usize]) -> Schema {
        Schema { fields: indices.iter().map(|&i| self.fields[i].clone()).collect() }
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, fld) in self.fields.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{} {}", fld.name, fld.ty)?;
            if fld.nullable {
                write!(f, "?")?;
            }
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::new(vec![
            Field::new("id", SqlType::Int, false),
            Field::new("name", SqlType::Text, true),
        ])
    }

    #[test]
    fn lookup_is_case_insensitive() {
        let s = schema();
        assert_eq!(s.index_of("ID"), Some(0));
        assert_eq!(s.index_of("Name"), Some(1));
        assert_eq!(s.index_of("missing"), None);
        assert!(s.index_of_or_err("missing").is_err());
    }

    #[test]
    fn join_marks_right_nullable_for_outer() {
        let l = schema();
        let r = Schema::new(vec![Field::new("ext", SqlType::Text, false)]);
        let inner = l.join(&r, false);
        let outer = l.join(&r, true);
        assert!(!inner.field(2).nullable);
        assert!(outer.field(2).nullable);
        assert_eq!(outer.len(), 3);
    }

    #[test]
    fn select_projects_in_order() {
        let s = schema();
        let p = s.select(&[1, 0]);
        assert_eq!(p.field(0).name, "name");
        assert_eq!(p.field(1).name, "id");
    }

    #[test]
    fn indices_of_detects_duplicates() {
        let s = Schema::new(vec![
            Field::new("k", SqlType::Int, false),
            Field::new("K", SqlType::Int, false),
        ]);
        assert_eq!(s.indices_of("k").len(), 2);
    }
}
