//! Incremental-vs-full equivalence for cached views: every view shape ×
//! mutation pattern must leave the DCV materialization multiset-equal
//! (order-insensitive digest) to a cold recompute of the same query at
//! the same snapshot — and the delta-capable shapes must get there
//! *without* a full refresh.
//!
//! Debug builds double-check every incremental step inside the cache
//! itself (`CachedView` verifies against a full recompute), so a digest
//! mismatch here would have already failed the read.

use vdm_cache::multiset_digest;
use vdm_core::{CacheMode, Database};
use vdm_storage::StorageEngine;
use vdm_types::Value;

fn fresh() -> Database {
    let mut db = Database::hana();
    db.execute_script(
        "create table customer (c_id bigint primary key, name text not null);
         create table orders (o_id bigint primary key, cust bigint not null,
                              qty bigint not null, price bigint not null);",
    )
    .unwrap();
    let customers = (1..=4).map(|i| vec![Value::Int(i), Value::str(format!("c{i}"))]).collect();
    db.engine().insert("customer", customers).unwrap();
    db.engine().insert("orders", (1..=40).map(order).collect()).unwrap();
    db
}

fn order(o_id: i64) -> Vec<Value> {
    vec![
        Value::Int(o_id),
        Value::Int(o_id % 4 + 1),    // cust
        Value::Int(o_id % 10),       // qty
        Value::Int((o_id * 7) % 50), // price
    ]
}

/// (name, SQL) for every maintained shape in the equivalence matrix.
const SHAPES: &[(&str, &str)] = &[
    ("filter", "select o_id, qty from orders where qty >= 5"),
    ("project", "select o_id, qty + price as qp from orders"),
    ("fk-join", "select o_id, name, qty from orders join customer on cust = c_id"),
    (
        "agg-over-join",
        "select name, count(*) as n, sum(qty) as sq, min(price) as mn, max(qty) as mx \
         from orders join customer on cust = c_id group by name",
    ),
    (
        "union-all",
        "select o_id from orders where qty < 3 \
         union all select o_id from orders where qty >= 7",
    ),
];

fn insert_only(e: &StorageEngine) {
    e.insert("customer", vec![vec![Value::Int(5), Value::str("c5")]]).unwrap();
    e.insert("orders", (100..110).map(order).collect()).unwrap();
    // Rows for the brand-new customer land in a brand-new group.
    e.insert(
        "orders",
        vec![
            vec![Value::Int(200), Value::Int(5), Value::Int(9), Value::Int(1)],
            vec![Value::Int(201), Value::Int(5), Value::Int(0), Value::Int(49)],
        ],
    )
    .unwrap();
}

fn delete_some(e: &StorageEngine) {
    // Kills the whole `cust = 4` group (o_id % 4 == 3) and a few others —
    // including group extremes, which exercises MIN/MAX group rebuilds.
    e.delete_where("orders", &|r| matches!(r[0], Value::Int(id) if id % 4 == 3 || id % 7 == 0))
        .unwrap();
}

fn update_some(e: &StorageEngine) {
    // An update is a retraction + insertion at one snapshot: price drops
    // to a new group minimum, qty crosses the filter thresholds.
    e.update_where("orders", &|r| r[0] == Value::Int(5), &|r| r[3] = Value::Int(0)).unwrap();
    e.update_where("orders", &|r| r[0] == Value::Int(8), &|r| r[2] = Value::Int(9)).unwrap();
}

fn mixed(e: &StorageEngine) {
    insert_only(e);
    delete_some(e);
    update_some(e);
}

fn empty_delta(_e: &StorageEngine) {}

#[test]
fn incremental_maintenance_matches_full_recompute() {
    type Mutation = fn(&StorageEngine);
    let mutations: &[(&str, Mutation)] = &[
        ("insert-only", insert_only),
        ("delete", delete_some),
        ("update", update_some),
        ("mixed", mixed),
        ("empty-delta", empty_delta),
    ];
    for (shape, sql) in SHAPES {
        for (mutation, mutate) in mutations {
            let db = fresh();
            db.create_cached_view("v", sql, CacheMode::Dynamic).unwrap();
            let baseline = db.read_cached("v").unwrap();
            mutate(db.engine());
            let got = db.read_cached("v").unwrap();
            let cold = db.query(sql).unwrap();
            assert_eq!(
                multiset_digest(&got),
                multiset_digest(&cold),
                "[{shape} × {mutation}] view diverged from cold recompute \
                 ({} vs {} rows)",
                got.num_rows(),
                cold.num_rows()
            );
            let stats = db.cached_view("v").unwrap().stats();
            assert_eq!(
                stats.full_refreshes, 1,
                "[{shape} × {mutation}] expected only the registration materialization: {stats:?}"
            );
            if *mutation == "empty-delta" {
                assert_eq!(
                    multiset_digest(&baseline),
                    multiset_digest(&got),
                    "[{shape}] no mutation, no change"
                );
                assert_eq!(stats.incremental_refreshes, 0, "[{shape}] nothing to fold");
            } else {
                assert!(
                    stats.incremental_refreshes >= 1,
                    "[{shape} × {mutation}] expected incremental maintenance: {stats:?}"
                );
            }
        }
    }
}

#[test]
fn frozen_table_changes_force_full_refresh() {
    // A LEFT OUTER join freezes its augmenter side: changes there cannot
    // be expressed as a delta and must recompute.
    let db = fresh();
    db.create_cached_view(
        "v",
        "select o_id, name from orders left join customer on cust = c_id",
        CacheMode::Dynamic,
    )
    .unwrap();
    let view = db.cached_view("v").unwrap();
    assert_eq!(view.delta_plan().frozen_tables, vec!["customer".to_string()]);

    // Left-side (orders) changes still maintain incrementally.
    db.engine().insert("orders", vec![order(300)]).unwrap();
    db.read_cached("v").unwrap();
    assert_eq!(view.stats().incremental_refreshes, 1);
    assert_eq!(view.stats().full_refreshes, 1);

    // Frozen-side changes recompute.
    db.engine().insert("customer", vec![vec![Value::Int(9), Value::str("c9")]]).unwrap();
    let got = db.read_cached("v").unwrap();
    assert_eq!(view.stats().full_refreshes, 2);
    let cold = db.query("select o_id, name from orders left join customer on cust = c_id").unwrap();
    assert_eq!(multiset_digest(&got), multiset_digest(&cold));
}

#[test]
fn delta_cost_tracks_the_delta_not_the_base() {
    // The observable O(delta) contract: stats count the signed delta rows
    // actually folded, independent of base-table size.
    let db = fresh();
    db.engine().insert("orders", (1000..3000).map(order).collect()).unwrap();
    db.create_cached_view("v", "select o_id, qty from orders where qty >= 5", CacheMode::Dynamic)
        .unwrap();
    let view = db.cached_view("v").unwrap();
    view.set_verify(false); // isolate the delta path from the debug self-check
    db.engine().insert("orders", (5000..5010).map(order).collect()).unwrap();
    db.read_cached("v").unwrap();
    let stats = view.stats();
    assert_eq!(stats.full_refreshes, 1);
    // qty = o_id % 10 >= 5 holds for half the inserted keys.
    assert_eq!(stats.delta_rows, 5, "folded exactly the delta: {stats:?}");
}
