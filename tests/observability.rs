//! Query-lifecycle observability end-to-end: golden `EXPLAIN` /
//! `EXPLAIN ANALYZE` renderings on the paper's Fig. 5 (unused
//! augmentation join) and Fig. 8 (augmenter self-join) shapes, rewrite
//! trace assertions, and the metrics registry's exporters.
//!
//! Golden files live in `tests/golden/`. Timing tokens (`time=...`),
//! scan instance ids (`(inst N)`, a process-global counter), and the
//! scheduling-dependent `calls=` / `workers=` annotations (morsel claim
//! boundaries and worker attribution shift run-to-run under work
//! stealing) are masked by [`normalize`] so the files are stable across
//! runs and test orderings.
//! Regenerate with `UPDATE_GOLDEN=1 cargo test --test observability`.

use std::path::PathBuf;
use vdm_core::{Database, ParallelConfig, StatementResult};

/// Masks `pat<token>` runs: every char after `pat` until `stop` becomes `_`.
fn mask_after(s: &str, pat: &str, stop: impl Fn(char) -> bool) -> String {
    let mut out = String::new();
    let mut rest = s;
    while let Some(i) = rest.find(pat) {
        let end = i + pat.len();
        out.push_str(&rest[..end]);
        out.push('_');
        let tail = &rest[end..];
        let j = tail.find(&stop).unwrap_or(tail.len());
        rest = &tail[j..];
    }
    out.push_str(rest);
    out
}

/// Normalizes run-dependent tokens out of EXPLAIN-family output. The
/// `[optimize ...]` header line is dropped wholesale: it is pure timing +
/// cache telemetry (asserted separately), and keeping it out of the golden
/// files keeps them byte-identical across optimizer-internals changes.
fn normalize(text: &str) -> String {
    let text: String =
        text.lines().filter(|l| !l.starts_with("[optimize ")).flat_map(|l| [l, "\n"]).collect();
    let masked = mask_after(&text, "(inst ", |c: char| !c.is_ascii_digit());
    let masked = mask_after(&masked, "time=", |c: char| c.is_whitespace() || c == ']');
    let masked = mask_after(&masked, "calls=", |c: char| !c.is_ascii_digit());
    mask_after(&masked, "workers=", |c: char| !c.is_ascii_digit())
}

fn assert_golden(name: &str, actual: &str) {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden").join(name);
    let actual = normalize(actual);
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        std::fs::write(&path, &actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("missing golden file {path:?} ({e}); regenerate with UPDATE_GOLDEN=1")
    });
    assert_eq!(
        actual, expected,
        "golden mismatch for {name}; regenerate with UPDATE_GOLDEN=1 if intended"
    );
}

/// Tiny deterministic orders/customer world, executed serially so profile
/// invocation counts are stable.
fn db() -> Database {
    let mut db = Database::hana();
    db.set_parallelism(ParallelConfig { threads: 1, morsel_rows: 1024 });
    db.execute_script(
        "create table customer (c_custkey bigint primary key, c_name text not null);
         create table orders (o_orderkey bigint primary key, o_custkey bigint not null,
                              o_total decimal(10,2) not null);
         insert into customer values (1, 'alice'), (2, 'bob');
         insert into orders values (10, 1, 5.00), (11, 1, 2.50), (12, 2, 9.99);",
    )
    .unwrap();
    db
}

/// Table 1 / Fig. 5: a LEFT OUTER augmentation join whose augmenter is
/// never referenced — the UAJ-removal shape.
const FIG5_UAJ: &str = "select o_orderkey from orders left join customer on o_custkey = c_custkey";

/// Fig. 8: the augmenter self-join an unfolded VDM view produces — the
/// anchor LEFT JOINs a second instance of itself on the primary key and
/// reads an augmenter-side column.
const FIG8_ASJ: &str = "select c.c_custkey, c2.c_name from customer c \
                        left join customer c2 on c.c_custkey = c2.c_custkey";

#[test]
fn golden_explain_fig5_uaj() {
    let db = db();
    assert_golden("explain_fig5_uaj.txt", &db.explain(FIG5_UAJ).unwrap());
}

#[test]
fn golden_explain_analyze_fig5_uaj() {
    let db = db();
    let text = db.explain_analyze(FIG5_UAJ).unwrap();
    // Per-node estimated/actual cardinalities and the fired rewrite must
    // be visible.
    assert!(text.contains("est=3 act=3"), "{text}");
    assert!(text.contains("time="), "{text}");
    assert!(text.contains("uaj-removal"), "{text}");
    // The header reports optimize time + property-cache effectiveness.
    assert!(text.contains("[optimize time="), "{text}");
    assert!(text.contains("property cache:"), "{text}");
    assert!(text.contains("hit rate]"), "{text}");
    assert_golden("explain_analyze_fig5_uaj.txt", &text);
}

#[test]
fn golden_explain_analyze_fig8_asj() {
    let mut db = db();
    // Through the SQL surface, as a user would type it.
    let StatementResult::Explained(text) =
        db.execute(&format!("explain analyze {FIG8_ASJ}")).unwrap()
    else {
        panic!("expected EXPLAIN ANALYZE output")
    };
    assert!(text.contains("asj-elimination"), "{text}");
    assert_golden("explain_analyze_fig8_asj.txt", &text);
}

#[test]
fn golden_explain_analyze_parallel_column_map_projection() {
    let mut db = db();
    // Parallel execution with tiny morsels: the pure column-map projection
    // (rename + reorder only) takes the fused column-mapping kernel path,
    // and the node must still report its own row count in the rendering.
    // The optimizer's cleanup collapses *stacked* pure projections at plan
    // time, so the single surviving column map is the shape the SQL
    // surface hands the executor; deeper exec-time chains (unoptimized
    // plans) are covered by the parallel-equivalence profile assertions.
    db.set_parallelism(ParallelConfig { threads: 4, morsel_rows: 2 });
    let text = db
        .explain_analyze(
            "select okey, cname from \
               (select c_name as cname, o_orderkey as okey from \
                 (select o_orderkey, c_name from orders \
                    join customer on o_custkey = c_custkey) t) t2",
        )
        .unwrap();
    let project_lines: Vec<&str> = text.lines().filter(|l| l.contains("Project")).collect();
    assert!(!project_lines.is_empty(), "expected a projection:\n{text}");
    for line in &project_lines {
        assert!(line.contains("act=3"), "fused node lost its row count: {line:?}\n{text}");
    }
    assert_golden("explain_analyze_parallel_column_map.txt", &text);
}

#[test]
fn uaj_trace_names_the_rule_exactly_once() {
    let db = db();
    let plan = db.plan(FIG5_UAJ).unwrap();
    let (optimized, trace) = db.optimizer().optimize_traced(&plan).unwrap();
    assert_eq!(vdm_plan::plan_stats(&optimized).joins, 0, "UAJ must be removed");
    let uaj_events: Vec<_> = trace.events.iter().filter(|e| e.rule == "uaj-removal").collect();
    assert_eq!(
        uaj_events.len(),
        1,
        "Table 1 query must fire uaj-removal exactly once: {:#?}",
        trace.events
    );
    let e = uaj_events[0];
    assert!(e.node_id.is_some(), "event carries a plan-node id: {e:?}");
    assert!(e.evidence.contains("AJ"), "evidence cites the AJ case: {e:?}");
    assert_eq!(trace.hit_counts().get("uaj-removal"), Some(&1));
}

#[test]
fn registry_exports_prometheus_and_json_with_uaj_hits() {
    let db = db();
    let rule = vdm_obs::registry::label("vdm_rewrite_fired_total", "rule", "uaj-removal");
    let reg = db.metrics();
    let queries_before = reg.counter("vdm_queries_total");
    let uaj_before = reg.counter(&rule);

    let rows = db.query(FIG5_UAJ).unwrap();
    assert_eq!(rows.num_rows(), 3);

    // Counters moved (the registry is process-global, so compare deltas).
    assert_eq!(reg.counter("vdm_queries_total"), queries_before + 1);
    assert!(reg.counter(&rule) > uaj_before);

    let prom = reg.to_prometheus();
    assert!(prom.contains("# TYPE vdm_queries_total counter"), "{prom}");
    assert!(prom.contains("vdm_rewrite_fired_total{rule=\"uaj-removal\"}"), "{prom}");
    assert!(prom.contains("vdm_query_seconds_bucket{le=\"+Inf\"}"), "{prom}");
    assert!(prom.contains("vdm_query_seconds_count"), "{prom}");
    assert!(prom.contains("vdm_rows_scanned_total"), "{prom}");

    let json = reg.to_json();
    assert!(json.trim_start().starts_with('{') && json.trim_end().ends_with('}'), "{json}");
    assert_eq!(json.matches('{').count(), json.matches('}').count(), "unbalanced JSON: {json}");
    assert!(json.contains("\"vdm_queries_total\""), "{json}");
    // Embedded label quotes arrive JSON-escaped inside the key string.
    assert!(json.contains("vdm_rewrite_fired_total{rule=\\\"uaj-removal\\\"}"), "{json}");
}

#[test]
fn golden_explain_analyze_cached_view_header() {
    let mut db = db();
    db.create_cached_view(
        "cust_orders",
        "select o_orderkey, c_name from orders join customer on o_custkey = c_custkey",
        vdm_core::CacheMode::Dynamic,
    )
    .unwrap();
    // Unchanged dependencies: served as-is.
    let fresh = db.explain_analyze_cached("cust_orders").unwrap();
    assert!(fresh.contains("[view cache: fresh]"), "{fresh}");
    // One inserted order joins one customer: a 1-row signed delta.
    db.execute("insert into orders values (13, 2, 1.00)").unwrap();
    let text = db.explain_analyze_cached("cust_orders").unwrap();
    assert!(text.contains("[view cache: incremental(+1 rows)]"), "{text}");
    assert_golden("explain_analyze_cached_view.txt", &text);

    // An ORDER BY view is full-only: any change recomputes.
    db.create_cached_view(
        "ordered",
        "select o_orderkey from orders order by o_orderkey desc",
        vdm_core::CacheMode::Dynamic,
    )
    .unwrap();
    db.execute("insert into orders values (14, 1, 2.00)").unwrap();
    let full = db.explain_analyze_cached("ordered").unwrap();
    assert!(full.contains("[view cache: full refresh]"), "{full}");
}

#[test]
fn view_refresh_metrics_are_exported() {
    let mut db = db();
    let reg = db.metrics();
    let full = vdm_obs::registry::label("vdm_view_refresh_total", "kind", "full");
    let incr = vdm_obs::registry::label("vdm_view_refresh_total", "kind", "incremental");
    let noop = vdm_obs::registry::label("vdm_view_refresh_total", "kind", "noop");
    let full0 = reg.counter(&full);
    let incr0 = reg.counter(&incr);
    let noop0 = reg.counter(&noop);
    let delta0 = reg.counter("vdm_view_delta_rows_total");

    db.create_cached_view("vm", "select o_orderkey from orders", vdm_core::CacheMode::Dynamic)
        .unwrap();
    assert_eq!(reg.counter(&full), full0 + 1, "registration materializes in full");
    db.read_cached("vm").unwrap();
    assert_eq!(reg.counter(&noop), noop0 + 1, "unchanged deps are a no-op");
    db.execute("insert into orders values (30, 1, 3.00)").unwrap();
    db.read_cached("vm").unwrap();
    assert_eq!(reg.counter(&incr), incr0 + 1);
    assert_eq!(reg.counter("vdm_view_delta_rows_total"), delta0 + 1);

    let prom = reg.to_prometheus();
    assert!(prom.contains("vdm_view_refresh_total{kind=\"incremental\"}"), "{prom}");
    assert!(prom.contains("vdm_view_refresh_total{kind=\"full\"}"), "{prom}");
    assert!(prom.contains("vdm_view_refresh_seconds_bucket{le=\"+Inf\"}"), "{prom}");
    assert!(prom.contains("vdm_view_delta_rows_total"), "{prom}");
}

/// Masks a trace into its stable skeleton: indentation from parent depth,
/// span names, attr keys in insertion order. Attr *values* are masked to
/// `_` except the categorical ones (`outcome`, `view`, `cache`), so the
/// expected string is byte-stable across runs while still pinning the
/// causal structure.
fn trace_skeleton(trace: &vdm_obs::QueryTrace) -> String {
    let mut out = String::new();
    for s in &trace.spans {
        let mut depth = 0;
        let mut p = s.parent;
        while let Some(id) = p {
            depth += 1;
            p = trace.spans[id as usize].parent;
        }
        out.push_str(&"  ".repeat(depth));
        out.push_str(&s.name);
        for (k, v) in &s.attrs {
            match k.as_str() {
                "outcome" | "view" | "cache" => out.push_str(&format!(" {k}={v}")),
                _ => out.push_str(&format!(" {k}=_")),
            }
        }
        out.push('\n');
    }
    out
}

#[test]
fn serve_query_trace_forms_one_causal_tree() {
    use vdm_cache::CacheMode;
    use vdm_serve::{ServeConfig, Server};

    let mut db = Database::hana();
    db.set_parallelism(ParallelConfig { threads: 1, morsel_rows: 1024 });
    db.execute_script(
        "create table a (id bigint primary key, v text not null);
         create table b (id bigint primary key, a_id bigint not null, w bigint not null);
         create table c (id bigint primary key, b_id bigint not null, x bigint not null);
         insert into a values (1, 'one'), (2, 'two');
         insert into b values (10, 1, 100), (11, 2, 200);
         insert into c values (20, 10, 7), (21, 11, 9);",
    )
    .unwrap();
    let server = Server::with_config(db, ServeConfig { pool_threads: 1 });
    server
        .create_cached_view("live_b", "select id, w from b where w >= 0", CacheMode::Dynamic)
        .unwrap();
    let session = server.session();

    // One multi-join page query plus a DCV read, scooped into one scope:
    // the whole lifecycle must land in a single causally-linked tree.
    let sql = "select a.v, b.w, c.x from a \
               join b on b.a_id = a.id join c on c.b_id = b.id where a.id = 1";
    let (_, trace) = session.with_trace("browser_page", |s| {
        assert_eq!(s.query(sql).unwrap().num_rows(), 1);
        assert_eq!(s.read_cached("live_b").unwrap().num_rows(), 2);
    });
    let trace = trace.expect("with_trace owns the trace");

    assert_eq!(
        trace_skeleton(&trace),
        "browser_page\n\
         \x20 query session=_ shape=_\n\
         \x20   select_plan digest=_\n\
         \x20     plan_cache.lookup outcome=miss\n\
         \x20     bind\n\
         \x20     optimize\n\
         \x20   execute rows=_ workers=_\n\
         \x20 view.maintain view=live_b outcome=noop\n",
        "unexpected trace shape:\n{}",
        trace.render()
    );

    // Exactly one root; every other span is causally linked to it.
    assert_eq!(trace.spans[0].parent, None);
    assert!(trace.spans.iter().skip(1).all(|s| s.parent.is_some()));
    // The rendering and the JSON export carry the same tree.
    let text = trace.render();
    assert!(text.starts_with("trace "), "{text}");
    assert!(text.contains("└─ browser_page"), "{text}");
    assert!(text.contains("├─ query"), "{text}");
    let json = trace.to_json();
    assert!(json.contains("\"name\": \"plan_cache.lookup\""), "{json}");
    // The server keeps the finished trace for post-hoc inspection.
    assert_eq!(server.last_trace().unwrap().trace_id, trace.trace_id);

    // A second run of the same shape is a plan-cache hit, and the hit
    // path resolves without bind/optimize spans.
    let (_, trace) = session.with_trace("browser_page", |s| {
        s.query(sql).unwrap();
    });
    let skeleton = trace_skeleton(&trace.unwrap());
    assert!(skeleton.contains("plan_cache.lookup outcome=hit"), "{skeleton}");
    assert!(!skeleton.contains("optimize"), "hit must not re-plan: {skeleton}");
}

#[test]
fn explain_trace_statement_renders_the_span_tree() {
    let mut db = db();
    let StatementResult::Explained(text) =
        db.execute(&format!("explain trace {FIG5_UAJ}")).unwrap()
    else {
        panic!("expected EXPLAIN TRACE output")
    };
    assert!(text.contains("== EXPLAIN TRACE =="), "{text}");
    assert!(text.contains("└─ query"), "{text}");
    assert!(text.contains("select_plan"), "{text}");
    assert!(text.contains("execute"), "{text}");
    assert!(text.contains("row(s) returned"), "{text}");

    // The facade method also stores the trace object for export.
    db.explain_trace(FIG5_UAJ).unwrap();
    let trace = db.last_trace().expect("EXPLAIN TRACE stores the trace");
    assert!(trace.spans.iter().any(|s| s.name == "execute"), "{trace:?}");

    // EXPLAIN TRACE works even with automatic tracing off.
    vdm_obs::trace::set_enabled(false);
    let forced = db.explain_trace(FIG5_UAJ).unwrap();
    vdm_obs::trace::set_enabled(true);
    assert!(forced.contains("└─ query"), "{forced}");
}

#[test]
fn metric_catalog_covers_every_registered_metric() {
    use vdm_cache::CacheMode;
    use vdm_obs::{names, QueryStore};
    use vdm_serve::Server;
    use vdm_types::Value;

    // Drive every subsystem that registers metrics: queries (counters +
    // histograms), prepared statements and sessions (gauges), plan cache,
    // cached views, the query store, and slow-query capture.
    let server = Server::new(vdm_optimizer::Profile::hana());
    let session = server.session();
    session
        .execute_script(
            "create table m (k bigint primary key, v bigint not null);
             insert into m values (1, 10), (2, 20), (3, 30);",
        )
        .unwrap();
    // A forced trace scope registers vdm_traces_total even if another
    // test has automatic tracing toggled off at this instant.
    session.with_trace("audit", |s| {
        s.query("select v from m where k = 1").unwrap();
    });
    session.query("select v from m where k = 1").unwrap(); // plan-cache hit
    let p = session.prepare("select v from m where k = ?").unwrap();
    p.execute(&[Value::Int(2)]).unwrap();
    session.explain_analyze("select sum(v) as s from m").unwrap();
    server.create_cached_view("mv", "select k, v from m where v >= 0", CacheMode::Dynamic).unwrap();
    session.execute("insert into m values (4, 40)").unwrap();
    session.read_cached("mv").unwrap();
    let store = QueryStore::global();
    let prev = store.slow_threshold_nanos();
    store.set_slow_threshold_nanos(0); // everything is "slow" for one query
    session.query("select v from m where k = 3").unwrap();
    store.set_slow_threshold_nanos(prev);
    drop(p);

    // Audit: every metric name any crate registered resolves in the
    // names catalog and exports with `# HELP` and a matching `# TYPE`.
    let reg = vdm_obs::MetricsRegistry::global();
    let text = reg.to_prometheus();
    let registered = reg.metric_names();
    assert!(registered.len() >= 10, "workload registered too little: {registered:?}");
    for name in &registered {
        let base = name.split('{').next().unwrap();
        let desc = names::describe(base).unwrap_or_else(|| {
            panic!("metric {name} is registered but missing from the vdm_obs::names catalog")
        });
        assert!(text.contains(&format!("# HELP {base} ")), "missing # HELP for {base}");
        assert!(
            text.contains(&format!("# TYPE {base} {}\n", desc.kind.token())),
            "missing or mis-typed # TYPE for {base}"
        );
    }
    // And the serve-layer saturation metrics specifically exist.
    for must in [
        names::QUERIES_TOTAL,
        names::QUERY_SECONDS,
        names::TRACES_TOTAL,
        names::STORE_RECORDS_TOTAL,
        names::SLOW_QUERIES_TOTAL,
        names::SESSIONS_OPEN,
        names::INFLIGHT_QUERIES,
        names::QUEUE_WAIT_SECONDS,
        names::PREPARED_STATEMENTS_OPEN,
        names::SESSION_QUERIES_TOTAL,
        names::PLAN_CACHE_HITS_TOTAL,
        names::VIEW_REFRESH_TOTAL,
    ] {
        assert!(
            registered.iter().any(|n| n.split('{').next().unwrap() == must),
            "expected {must} to be registered by the workload"
        );
    }
}

#[test]
fn explain_analyze_profiles_every_executed_node() {
    let db = db();
    let text = db
        .explain_analyze(
            "select c_name, sum(o_total) as total from orders \
                          left join customer on o_custkey = c_custkey group by c_name",
        )
        .unwrap();
    // Every rendered operator line carries a profile annotation.
    let plan_lines: Vec<&str> = text
        .lines()
        .take_while(|l| !l.starts_with("== rewrite trace"))
        .filter(|l| {
            !l.starts_with("==")
                && !l.starts_with("[optimize ")
                && !l.starts_with("[misestimate")
                && !l.trim().is_empty()
        })
        .collect();
    assert!(!plan_lines.is_empty(), "{text}");
    for line in plan_lines {
        assert!(
            line.contains(" [#")
                && (line.contains("rows=") || line.contains("act="))
                && line.contains("time="),
            "unannotated operator line {line:?} in:\n{text}"
        );
    }
    // Estimated cardinalities accompany actuals on the cached path.
    assert!(text.contains("est="), "{text}");
    // Inner operators report their input as the children's output.
    assert!(text.contains("in="), "{text}");
}
