//! VDM-layer scenarios end-to-end: layered views with associations, DAC
//! injection, the draft pattern, and custom-field extension — all executed
//! through the `Database` facade.

use std::sync::Arc;
use vdm_catalog::TableBuilder;
use vdm_core::Database;
use vdm_expr::Expr;
use vdm_model::{
    extension::{extend_with_fields, ExtensionSpec},
    AccessPolicy, Association, DacRule, DraftPair, VdmModel, VdmView, ViewLayer,
};
use vdm_plan::{plan_stats, DeclaredCardinality, LogicalPlan};
use vdm_types::{SqlType, Value};

fn sales_world(db: &mut Database) -> (Arc<vdm_catalog::TableDef>, Arc<vdm_catalog::TableDef>) {
    let vbak = db
        .catalog_mut()
        .create_table(
            TableBuilder::new("vbak")
                .column("vbeln", SqlType::Int, false)
                .column("kunnr", SqlType::Int, false)
                .column("netwr", SqlType::Decimal { scale: 2 }, false)
                .column("zz_region", SqlType::Text, true)
                .primary_key(&["vbeln"])
                .build()
                .unwrap(),
        )
        .unwrap();
    let kna1 = db
        .catalog_mut()
        .create_table(
            TableBuilder::new("kna1")
                .column("kunnr", SqlType::Int, false)
                .column("name1", SqlType::Text, false)
                .column("land1", SqlType::Text, false)
                .primary_key(&["kunnr"])
                .build()
                .unwrap(),
        )
        .unwrap();
    db.engine().create_table(Arc::clone(&vbak)).unwrap();
    db.engine().create_table(Arc::clone(&kna1)).unwrap();
    db.execute_script(
        "insert into kna1 values (10, 'Aurora', 'DE'), (11, 'Borealis', 'FR');
         insert into vbak values
            (1, 10, 1500.00, 'EMEA'),
            (2, 11, 250.00, null),
            (3, 10, 980.50, 'EMEA')",
    )
    .unwrap();
    (vbak, kna1)
}

#[test]
fn layered_views_with_associations() {
    let mut db = Database::hana();
    let (vbak, kna1) = sales_world(&mut db);
    let mut model = VdmModel::new();
    // Basic layer: business names over raw tables.
    model
        .basic_view_over(
            "I_Customer",
            kna1,
            &[("kunnr", "Customer"), ("name1", "CustomerName"), ("land1", "Country")],
            vec![],
        )
        .unwrap();
    model
        .basic_view_over(
            "I_SalesOrder",
            vbak,
            &[("vbeln", "SalesOrder"), ("kunnr", "SoldToParty"), ("netwr", "NetAmount")],
            vec![Association {
                name: "_Customer".into(),
                target: "I_Customer".into(),
                on: vec![("SoldToParty".into(), "Customer".into())],
                cardinality: DeclaredCardinality::ManyToOne,
            }],
        )
        .unwrap();
    // Composite layer via a path expression: SalesOrder._Customer.
    let with_customer = model.resolve_association("I_SalesOrder", "_Customer").unwrap();
    model
        .register(VdmView {
            name: "C_SalesOrderEnriched".into(),
            layer: ViewLayer::Composite,
            plan: with_customer,
            associations: vec![],
        })
        .unwrap();
    assert_eq!(model.layer_counts(), (2, 1, 0));
    // Queries through SQL use the registered plans.
    db.register_view(
        "C_SalesOrderEnriched",
        model.view("C_SalesOrderEnriched").unwrap().plan.clone(),
    );
    let rows = db
        .query("select SalesOrder, CustomerName from C_SalesOrderEnriched order by SalesOrder")
        .unwrap();
    assert_eq!(rows.num_rows(), 3);
    assert_eq!(rows.row(0)[1], Value::str("Aurora"));
    // The association join disappears when unused.
    let plan = db.optimized_plan("select SalesOrder, NetAmount from C_SalesOrderEnriched").unwrap();
    assert_eq!(plan_stats(&plan).joins, 0);
}

#[test]
fn dac_restricts_per_user() {
    let mut db = Database::hana();
    let (vbak, kna1) = sales_world(&mut db);
    // Consumption view: orders + customer country.
    let join =
        LogicalPlan::left_join(LogicalPlan::scan(vbak), LogicalPlan::scan(kna1), vec![(1, 0)])
            .unwrap();
    let view = LogicalPlan::project(
        join,
        vec![
            (Expr::col(0), "SalesOrder".into()),
            (Expr::col(2), "NetAmount".into()),
            (Expr::col(6), "Country".into()),
        ],
    )
    .unwrap();
    let mut policy = AccessPolicy::new();
    policy.add_rule(
        "german_sales",
        DacRule {
            view: "orders_v".into(),
            column: "Country".into(),
            allowed: vec![Value::str("DE")],
            allow_null: false,
        },
    );
    policy.add_rule(
        "global_audit",
        DacRule {
            view: "orders_v".into(),
            column: "Country".into(),
            allowed: vec![Value::str("DE"), Value::str("FR")],
            allow_null: true,
        },
    );
    let german = policy.protect("german_sales", "orders_v", view.clone()).unwrap();
    let audit = policy.protect("global_audit", "orders_v", view.clone()).unwrap();
    db.register_view("orders_german", german);
    db.register_view("orders_audit", audit);
    assert_eq!(db.query("select SalesOrder from orders_german").unwrap().num_rows(), 2);
    assert_eq!(db.query("select SalesOrder from orders_audit").unwrap().num_rows(), 3);
    // Unknown user: denied outright.
    assert!(policy.protect("mallory", "orders_v", view).is_err());
}

#[test]
fn draft_pattern_full_cycle() {
    let mut db = Database::hana();
    let mk = |name: &str| {
        TableBuilder::new(name)
            .column("doc_id", SqlType::Int, false)
            .column("amount", SqlType::Decimal { scale: 2 }, false)
            .primary_key(&["doc_id"])
            .build()
            .unwrap()
    };
    let active = db.catalog_mut().create_table(mk("doc")).unwrap();
    let draft = db.catalog_mut().create_table(mk("doc_draft")).unwrap();
    db.engine().create_table(Arc::clone(&active)).unwrap();
    db.engine().create_table(Arc::clone(&draft)).unwrap();
    db.execute("insert into doc values (1, 100.00), (2, 40.00)").unwrap();
    let pair = DraftPair::new(active, draft).unwrap();
    db.register_view("doc_op", pair.operational_plan().unwrap());

    // 1. User starts editing: draft row appears in the operational view only.
    db.execute("insert into doc_draft values (3, 77.70)").unwrap();
    assert_eq!(db.query("select doc_id from doc_op").unwrap().num_rows(), 3);
    // 2. Activation: move draft to active (application-side transaction).
    db.engine().delete_where("doc_draft", &|r| r[0] == Value::Int(3)).unwrap();
    db.execute("insert into doc values (3, 77.70)").unwrap();
    assert_eq!(db.query("select doc_id from doc_op").unwrap().num_rows(), 3);
    let total = db.query("select sum(amount) from doc_op").unwrap();
    assert_eq!(total.row(0)[0], Value::Dec("217.70".parse().unwrap()));
}

#[test]
fn custom_field_extension_through_sql() {
    let mut db = Database::hana();
    let (vbak, _) = sales_world(&mut db);
    // The managed view hides zz_region.
    let managed = LogicalPlan::project(
        LogicalPlan::scan(Arc::clone(&vbak)),
        vec![(Expr::col(0), "SalesOrder".into()), (Expr::col(2), "NetAmount".into())],
    )
    .unwrap();
    let spec = ExtensionSpec {
        key: vec![("SalesOrder".into(), "vbeln".into())],
        fields: vec!["zz_region".into()],
    };
    let extended = extend_with_fields(managed, vbak, &spec).unwrap();
    db.register_view("sales_ext", extended);
    // The custom field flows through SQL...
    let rows = db.query("select SalesOrder, zz_region from sales_ext order by SalesOrder").unwrap();
    assert_eq!(rows.row(0)[1], Value::str("EMEA"));
    assert!(rows.row(1)[1].is_null());
    // ...and the self-join is gone from the executed plan.
    let plan = db.optimized_plan("select SalesOrder, zz_region from sales_ext").unwrap();
    assert_eq!(plan_stats(&plan).joins, 0);
    assert_eq!(plan_stats(&plan).table_instances, 1);
}
