//! The persistent plan-digest query store, end-to-end through `vdm-serve`:
//! digest-keyed aggregation across repeated prepared executions, ring
//! eviction order, JSON-lines round-trip, and slow-query capture.
//!
//! The store under test is [`QueryStore::global`] — the instance the core
//! execution path records into — so every test serializes on one mutex
//! and restores the knobs it changes.

use std::sync::Mutex;
use vdm_obs::{QueryStore, SlowQuery};
use vdm_optimizer::Profile;
use vdm_serve::Server;
use vdm_types::Value;

/// Serializes tests that mutate the process-wide store.
static STORE_LOCK: Mutex<()> = Mutex::new(());

fn server() -> Server {
    let server = Server::new(Profile::hana());
    server
        .session()
        .execute_script(
            "create table t (k bigint primary key, v text not null);
             insert into t values (1, 'one'), (2, 'two'), (3, 'three');",
        )
        .unwrap();
    server
}

#[test]
fn repeated_prepared_executions_aggregate_under_one_digest() {
    let _serial = STORE_LOCK.lock().unwrap();
    let store = QueryStore::global();
    store.clear();

    let server = server();
    let session = server.session();
    let p = session.prepare("select v from t where k = ?").unwrap();
    for k in [1, 2, 3, 1, 2] {
        assert_eq!(p.execute(&[Value::Int(k)]).unwrap().num_rows(), 1);
    }

    let aggs = store.aggregates();
    let agg = aggs
        .iter()
        .find(|a| a.shape.contains("select v from t"))
        .unwrap_or_else(|| panic!("no aggregate for the prepared shape: {aggs:?}"));
    assert_eq!(agg.execs, 5);
    // First execution fills the fresh server's plan cache; the rest hit.
    assert_eq!((agg.cache_misses, agg.cache_hits), (1, 4));
    assert_eq!(agg.rows_out_total, 5);
    assert!(agg.rows_in_total >= 5, "scans feed rows_in: {agg:?}");
    assert_eq!(agg.latency.count(), 5);
    assert!(agg.workers_last >= 1);
    // The profiled executor supplied per-node rows_out history.
    assert!(!agg.node_rows.is_empty(), "{agg:?}");
    assert!(agg.latency_quantile(0.95) >= agg.latency_quantile(0.5));

    // The recent ring saw the same five executions, newest last.
    let recent = store.recent();
    assert!(recent.len() >= 5, "{recent:?}");
    let tail = &recent[recent.len() - 5..];
    assert!(tail.iter().all(|s| s.digest == agg.digest), "{tail:?}");
    assert!(!tail[0].cache_hit && tail[1..].iter().all(|s| s.cache_hit), "{tail:?}");
}

#[test]
fn ring_evicts_oldest_executions_first() {
    let _serial = STORE_LOCK.lock().unwrap();
    let store = QueryStore::global();
    store.clear();
    store.set_ring_capacity(4);

    let server = server();
    let session = server.session();
    // Two shapes with distinct digests: one old execution, then four of
    // the other — the old one must be evicted, order preserved.
    session.query("select v from t where k = 1").unwrap();
    let p = session.prepare("select k from t where v = ?").unwrap();
    for _ in 0..4 {
        p.execute(&[Value::str("two")]).unwrap();
    }
    let recent = store.recent();
    assert_eq!(recent.len(), 4);
    let first_digest = recent[0].digest;
    assert!(
        recent.iter().all(|s| s.digest == first_digest),
        "the older shape must have been evicted: {recent:?}"
    );
    // Aggregates are not subject to ring eviction.
    assert_eq!(store.aggregates().len(), 2);
    store.set_ring_capacity(vdm_obs::store::DEFAULT_RING_CAPACITY);
}

#[test]
fn jsonl_file_round_trip_reloads_identical_aggregates() {
    let _serial = STORE_LOCK.lock().unwrap();
    let store = QueryStore::global();
    store.clear();

    let server = server();
    let session = server.session();
    let p = session.prepare("select v from t where k = ?").unwrap();
    for k in 1..=3 {
        p.execute(&[Value::Int(k)]).unwrap();
    }
    session.query("select count(*) as n from t").unwrap();

    let dir = std::path::PathBuf::from(env!("CARGO_TARGET_TMPDIR"));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("query_store_roundtrip.jsonl");
    store.save_jsonl(&path).unwrap();

    // Reload into a fresh store: aggregates must be *identical* —
    // histogram buckets, node_rows, counts, everything.
    let reloaded = QueryStore::new();
    let report = reloaded.load_jsonl(&path).unwrap();
    assert_eq!((report.loaded, report.skipped), (2, 0));
    assert_eq!(reloaded.aggregates(), store.aggregates());

    // Loading the same file again merges: counts double deterministically.
    assert_eq!(reloaded.load_jsonl(&path).unwrap().loaded, 2);
    for (merged, original) in reloaded.aggregates().iter().zip(store.aggregates()) {
        assert_eq!(merged.execs, original.execs * 2);
        assert_eq!(merged.latency.count(), original.latency.count() * 2);
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn slow_threshold_captures_full_explain_analyze() {
    let _serial = STORE_LOCK.lock().unwrap();
    let store = QueryStore::global();
    store.clear();
    let prev = store.slow_threshold_nanos();
    store.set_slow_threshold_nanos(0); // every execution is "slow"

    let server = server();
    let session = server.session();
    session.query("select v from t where k = 2").unwrap();
    store.set_slow_threshold_nanos(prev);

    let slow: Vec<SlowQuery> =
        store.slow_queries().into_iter().filter(|s| s.shape.contains("select v from t")).collect();
    assert!(!slow.is_empty(), "threshold 0 must capture the query");
    let captured = &slow[0];
    // The capture is the full EXPLAIN ANALYZE rendering, produced from
    // the already-collected profile (the query is not re-run).
    assert!(captured.explain.contains("== EXPLAIN ANALYZE"), "{}", captured.explain);
    assert!(captured.explain.contains("row(s) returned"), "{}", captured.explain);
    assert!(captured.explain.contains("est="), "{}", captured.explain);
    assert!(captured.explain.contains("act="), "{}", captured.explain);
    let agg = store.aggregate(captured.digest).expect("slow query also aggregates");
    assert_eq!(agg.execs, 1);
}
