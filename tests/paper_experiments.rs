//! Guards the paper's published numbers: Tables 1–4 cell-for-cell, the
//! Fig. 3/4 complexity profile, and the Fig. 14 recognition split. These
//! are the same checks the bench binaries print, pinned as tests so a
//! regression in any rewrite rule trips CI before it skews an experiment.

use vdm_bench::{harness, queries};
use vdm_optimizer::{Optimizer, Profile};
use vdm_plan::{plan_stats, LogicalPlan};

#[test]
fn table1_all_35_cells() {
    let (catalog, _engine) = harness::setup_tpch(0.01, false);
    let systems = Profile::paper_systems();
    let expected: [[bool; 5]; 7] = [
        [true, true, false, true, true],
        [true, true, false, false, true],
        [true, true, false, true, true],
        [true, false, false, false, true],
        [true, true, false, false, true],
        [true, false, false, false, true],
        [true, false, false, false, false],
    ];
    for ((name, plan), want_row) in queries::all_uaj(&catalog).iter().zip(expected) {
        for (profile, want) in systems.iter().zip(want_row) {
            assert_eq!(
                harness::join_free_under(profile, plan),
                want,
                "{name} under {}",
                profile.name()
            );
        }
    }
}

#[test]
fn table2_limit_pushdown_cells() {
    let (catalog, _engine) = harness::setup_tpch(0.01, false);
    let paging = queries::paging(&catalog).unwrap();
    for profile in Profile::paper_systems() {
        let optimized = Optimizer::new(profile.clone()).optimize(&paging).unwrap();
        assert_eq!(
            queries::limit_below_join(&optimized),
            profile.name() == "hana",
            "profile {}",
            profile.name()
        );
    }
}

#[test]
fn table3_asj_cells() {
    let (catalog, _engine) = harness::setup_tpch(0.01, false);
    for (name, plan) in queries::all_asj(&catalog) {
        for profile in Profile::paper_systems() {
            assert_eq!(
                harness::join_free_under(&profile, &plan),
                profile.name() == "hana",
                "{name} under {}",
                profile.name()
            );
        }
    }
}

#[test]
fn table4_union_cells() {
    let (catalog, _engine) = harness::setup_tpch(0.01, false);
    for (name, plan) in queries::all_union(&catalog) {
        for profile in Profile::paper_systems() {
            assert_eq!(
                harness::join_free_under(&profile, &plan),
                profile.name() == "hana",
                "{name} under {}",
                profile.name()
            );
        }
    }
}

#[test]
fn fig3_and_fig4_profile() {
    let erp = vdm_data::erp::Erp { journal_rows: 50, seed: 4711 };
    let mut catalog = vdm_catalog::Catalog::new();
    let engine = vdm_storage::StorageEngine::new();
    let schema = erp.build(&mut catalog, &engine).unwrap();
    let browser = vdm_data::erp::journal_entry_item_browser(&schema).unwrap();
    let fig3 = plan_stats(&browser.protected);
    assert_eq!(
        (fig3.table_instances, fig3.table_references, fig3.joins),
        (47, 62, 49),
        "Fig. 3 complexity profile"
    );
    assert_eq!((fig3.unions, fig3.max_union_width), (1, 5));
    assert_eq!((fig3.aggregates, fig3.distincts), (1, 1));

    let count = LogicalPlan::aggregate(
        browser.protected.clone(),
        vec![],
        vec![(vdm_expr::AggExpr::count_star(), "n".into())],
    )
    .unwrap();
    let optimized = Optimizer::hana().optimize(&count).unwrap();
    let fig4 = plan_stats(&optimized);
    assert_eq!(fig4.joins, 2, "only DAC-guarded joins survive:\n{}", vdm_plan::explain(&optimized));
    assert_eq!(fig4.table_instances, 3);
    assert_eq!(fig4.unions, 0);
    assert_eq!(fig4.distincts, 0);

    // The rewritten count agrees with the raw one.
    let a = vdm_exec::execute(&count, &engine).unwrap();
    let b = vdm_exec::execute(&optimized, &engine).unwrap();
    assert_eq!(a.row(0), b.row(0));
}

#[test]
fn fig14_recognition_split() {
    let cfg = vdm_data::figview::Fig14Config { n_views: 12, rows_per_table: 60, seed: 77 };
    let mut catalog = vdm_catalog::Catalog::new();
    let engine = vdm_storage::StorageEngine::new();
    let fig = vdm_data::figview::generate(&cfg, &mut catalog, &engine).unwrap();
    let hana = Optimizer::hana();
    for case in &fig.cases {
        let orig = hana.optimize(&case.original).unwrap();
        let plain = hana.optimize(&case.extended_plain).unwrap();
        let with_case = hana.optimize(&case.extended_case).unwrap();
        // Case join always collapses to the original's join count.
        assert_eq!(
            plan_stats(&with_case).joins,
            plan_stats(&orig).joins,
            "{} with intent",
            case.name
        );
        // The heuristic only matches shallow shapes.
        assert_eq!(
            plan_stats(&plain).joins == plan_stats(&orig).joins,
            !case.deep,
            "{} heuristic",
            case.name
        );
    }
}

#[test]
fn uaj_execution_metrics_shrink() {
    // Beyond wall time: the optimized plan must do strictly less work.
    let (catalog, engine) = harness::setup_tpch(0.02, false);
    let plan = queries::uaj2a(&catalog).unwrap();
    let optimized = Optimizer::hana().optimize(&plan).unwrap();
    let snap = engine.snapshot();
    let (a, m_raw) = vdm_exec::execute_at(&plan, &engine, snap).unwrap();
    let (b, m_opt) = vdm_exec::execute_at(&optimized, &engine, snap).unwrap();
    assert_eq!(a.num_rows(), b.num_rows());
    assert!(m_opt.rows_scanned < m_raw.rows_scanned);
    assert_eq!(m_opt.join_build_rows, 0, "no joins left");
    assert!(m_raw.join_build_rows > 0);
}
