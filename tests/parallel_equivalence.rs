//! Serial vs parallel executor equivalence.
//!
//! Every operator shape — filter, project, join (inner, left outer, left
//! outer + residual), aggregate, distinct, sort, limit, union — runs at
//! `threads ∈ {1, 2, 4, 8}` over TPC-H and ERP data. The
//! morsel-driven executor merges partial results in morsel index order, so
//! results must match the serial executor *exactly* (same rows, same
//! order) and the merged row-count metrics must agree. The one sanctioned
//! divergence is `rows_scanned` under a pushed-down LIMIT, where the
//! parallel scan works in whole waves of morsels; a dedicated test pins
//! its bound instead.

use std::sync::Arc;
use vdm_data::erp::{journal_entry_item_browser, Erp};
use vdm_data::tpch::Tpch;
use vdm_exec::{execute_at, execute_parallel_at, execute_profiled_at, ParallelConfig};
use vdm_expr::{AggExpr, AggFunc, BinOp, Expr};
use vdm_optimizer::{Optimizer, Profile};
use vdm_plan::{JoinKind, LogicalPlan, PlanRef, SortKey};
use vdm_storage::StorageEngine;

const THREADS: usize = 4;
/// Small morsels so even the test-scale tables split into many of them.
const MORSEL_ROWS: usize = 384;
/// Every parallel shape is checked at each of these thread counts —
/// bit-identity must hold across the whole sweep, not just one setting.
const THREAD_SWEEP: [usize; 4] = [1, 2, 4, 8];

fn config() -> ParallelConfig {
    ParallelConfig { threads: THREADS, morsel_rows: MORSEL_ROWS }
}

fn config_at(threads: usize) -> ParallelConfig {
    ParallelConfig { threads, morsel_rows: MORSEL_ROWS }
}

/// Sort-normalizes rows for order-insensitive comparison.
fn normalized(batch: &vdm_storage::Batch) -> Vec<Vec<vdm_types::Value>> {
    let mut rows = batch.to_rows();
    rows.sort_by(|a, b| {
        a.iter()
            .zip(b.iter())
            .map(|(x, y)| x.total_cmp(y))
            .find(|o| *o != std::cmp::Ordering::Equal)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    rows
}

/// Runs `plan` serial and parallel; asserts identical rows (exact order
/// AND sort-normalized) and consistent merged row-count metrics.
fn assert_equivalent(name: &str, plan: &PlanRef, engine: &StorageEngine) {
    let snap = engine.snapshot();
    let (serial, sm) = execute_at(plan, engine, snap).unwrap();
    for threads in THREAD_SWEEP {
        let (par, pm) = execute_parallel_at(plan, engine, snap, config_at(threads)).unwrap();
        assert_eq!(par.to_rows(), serial.to_rows(), "{name}@t{threads}: rows diverge");
        assert_eq!(normalized(&par), normalized(&serial), "{name}@t{threads}: multisets diverge");
        assert_eq!(pm.operators, sm.operators, "{name}@t{threads}: operators");
        assert_eq!(pm.rows_scanned, sm.rows_scanned, "{name}@t{threads}: rows_scanned");
        assert_eq!(
            pm.filter_input_rows, sm.filter_input_rows,
            "{name}@t{threads}: filter_input_rows"
        );
        assert_eq!(pm.join_build_rows, sm.join_build_rows, "{name}@t{threads}: join_build_rows");
        assert_eq!(pm.join_output_rows, sm.join_output_rows, "{name}@t{threads}: join_output_rows");
        assert_eq!(pm.agg_input_rows, sm.agg_input_rows, "{name}@t{threads}: agg_input_rows");
    }
}

/// LIMIT shapes: rows equal, but `rows_scanned` only bounded (the wave
/// dispatch may overshoot the budget by up to one wave).
fn assert_equivalent_rows_only(name: &str, plan: &PlanRef, engine: &StorageEngine) {
    let snap = engine.snapshot();
    let (serial, _) = execute_at(plan, engine, snap).unwrap();
    for threads in THREAD_SWEEP {
        let (par, _) = execute_parallel_at(plan, engine, snap, config_at(threads)).unwrap();
        assert_eq!(par.to_rows(), serial.to_rows(), "{name}@t{threads}: rows diverge");
    }
}

/// Profiled runs must agree on *per-operator* output rows between the
/// serial and morsel-parallel engines (timings, invocation counts, and
/// worker counts legitimately differ; `QueryProfile::rows_by_node`
/// excludes them).
fn assert_profile_rows_equal(name: &str, plan: &PlanRef, engine: &StorageEngine) {
    let snap = engine.snapshot();
    let (sb, _, sp) = execute_profiled_at(plan, engine, snap, config_at(1)).unwrap();
    assert!(!sp.rows_by_node().is_empty(), "{name}: serial profile is empty");
    for threads in THREAD_SWEEP {
        let (pb, _, pp) = execute_profiled_at(plan, engine, snap, config_at(threads)).unwrap();
        assert_eq!(pb.to_rows(), sb.to_rows(), "{name}@t{threads}: rows diverge");
        assert_eq!(
            pp.rows_by_node(),
            sp.rows_by_node(),
            "{name}@t{threads}: per-node rows diverge"
        );
    }
}

fn tpch_engine() -> (vdm_catalog::Catalog, StorageEngine) {
    let gen = Tpch { sf: 0.2, seed: 42, with_foreign_keys: false };
    let mut catalog = vdm_catalog::Catalog::new();
    let engine = StorageEngine::new();
    gen.build(&mut catalog, &engine).unwrap();
    engine.merge_delta("orders").unwrap(); // main+delta mix across tables
    (catalog, engine)
}

#[test]
fn tpch_scan_filter_project_shapes() {
    let (catalog, engine) = tpch_engine();
    let orders = catalog.table_or_err("orders").unwrap();
    let lineitem = catalog.table_or_err("lineitem").unwrap();

    assert_equivalent("scan", &LogicalPlan::scan(Arc::clone(&orders)), &engine);

    let status = LogicalPlan::filter(
        LogicalPlan::scan(Arc::clone(&orders)),
        Expr::col(2).eq(Expr::str("O")),
    )
    .unwrap();
    assert_equivalent("filter-eq", &status, &engine);

    // Range predicate on the leading key column → zone-map pruned scan.
    let pruned = LogicalPlan::filter(
        LogicalPlan::scan(Arc::clone(&orders)),
        Expr::col(0).binary(BinOp::Gt, Expr::int(2_000)),
    )
    .unwrap();
    assert_equivalent("filter-pruned", &pruned, &engine);

    let projected = LogicalPlan::project(
        LogicalPlan::filter(
            LogicalPlan::scan(lineitem),
            Expr::col(4).binary(BinOp::GtEq, Expr::int(25)),
        )
        .unwrap(),
        vec![
            (Expr::col(0), "okey".into()),
            (Expr::col(5).binary(BinOp::Mul, Expr::col(6)), "discounted".into()),
        ],
    )
    .unwrap();
    assert_equivalent("filter-project-stack", &projected, &engine);
}

#[test]
fn tpch_join_shapes() {
    let (catalog, engine) = tpch_engine();
    let orders = catalog.table_or_err("orders").unwrap();
    let customer = catalog.table_or_err("customer").unwrap();

    let inner = LogicalPlan::inner_join(
        LogicalPlan::scan(Arc::clone(&orders)),
        LogicalPlan::scan(Arc::clone(&customer)),
        vec![(1, 0)],
    )
    .unwrap();
    assert_equivalent("join-inner", &inner, &engine);

    // Build side larger than probe side exercises the adaptive build-left
    // mirror (inner join, no residual, left smaller).
    let inner_small_left = LogicalPlan::inner_join(
        LogicalPlan::scan(Arc::clone(&customer)),
        LogicalPlan::scan(Arc::clone(&orders)),
        vec![(0, 1)],
    )
    .unwrap();
    assert_equivalent("join-inner-build-left", &inner_small_left, &engine);

    let outer = LogicalPlan::left_join(
        LogicalPlan::scan(Arc::clone(&customer)),
        LogicalPlan::scan(Arc::clone(&orders)),
        vec![(0, 1)],
    )
    .unwrap();
    assert_equivalent("join-left-outer", &outer, &engine);

    // Residual condition over the combined row: matched pairs that fail it
    // fall back to NULL padding, which the parallel probe must reproduce.
    let customer_width = customer.schema.len();
    let residual = LogicalPlan::join(
        LogicalPlan::scan(customer),
        LogicalPlan::scan(orders),
        JoinKind::LeftOuter,
        vec![(0, 1)],
        Some(Expr::col(customer_width + 2).eq(Expr::str("F"))),
        None,
        false,
    )
    .unwrap();
    assert_equivalent("join-left-outer-residual", &residual, &engine);
}

#[test]
fn tpch_aggregate_distinct_sort_shapes() {
    let (catalog, engine) = tpch_engine();
    let orders = catalog.table_or_err("orders").unwrap();

    let grouped = LogicalPlan::aggregate(
        LogicalPlan::scan(Arc::clone(&orders)),
        vec![(Expr::col(1), "cust".into())],
        vec![
            (AggExpr::count_star(), "n".into()),
            (AggExpr::new(AggFunc::Sum, Expr::col(3)), "total".into()),
            (AggExpr::new(AggFunc::Max, Expr::col(4)), "latest".into()),
        ],
    )
    .unwrap();
    assert_equivalent("aggregate-grouped", &grouped, &engine);

    let global = LogicalPlan::aggregate(
        LogicalPlan::scan(Arc::clone(&orders)),
        vec![],
        vec![
            (AggExpr::new(AggFunc::Avg, Expr::col(3)), "avg_total".into()),
            (AggExpr::new(AggFunc::Count, Expr::col(2)), "n".into()),
        ],
    )
    .unwrap();
    assert_equivalent("aggregate-global", &global, &engine);

    let distinct = LogicalPlan::distinct(
        LogicalPlan::project(
            LogicalPlan::scan(Arc::clone(&orders)),
            vec![(Expr::col(2), "status".into())],
        )
        .unwrap(),
    );
    assert_equivalent("distinct", &distinct, &engine);

    let sorted =
        LogicalPlan::sort(LogicalPlan::scan(orders), vec![SortKey::desc(3), SortKey::asc(0)])
            .unwrap();
    assert_equivalent("sort", &sorted, &engine);
}

#[test]
fn tpch_union_and_limit_shapes() {
    let (catalog, engine) = tpch_engine();
    let orders = catalog.table_or_err("orders").unwrap();
    let lineitem = catalog.table_or_err("lineitem").unwrap();

    let union = LogicalPlan::union_all(vec![
        LogicalPlan::scan(Arc::clone(&orders)),
        LogicalPlan::filter(
            LogicalPlan::scan(Arc::clone(&orders)),
            Expr::col(2).eq(Expr::str("P")),
        )
        .unwrap(),
    ])
    .unwrap();
    assert_equivalent("union-all", &union, &engine);

    // LIMIT drives the budgeted path: rows must match exactly; scan effort
    // is checked separately in `budgeted_limit_scan_is_bounded`.
    let limited = LogicalPlan::limit(LogicalPlan::scan(Arc::clone(&lineitem)), 10, Some(50));
    assert_equivalent_rows_only("limit-offset", &limited, &engine);

    let limited_union = LogicalPlan::limit(
        LogicalPlan::union_all(vec![
            LogicalPlan::scan(Arc::clone(&lineitem)),
            LogicalPlan::scan(lineitem),
        ])
        .unwrap(),
        0,
        Some(200),
    );
    assert_equivalent_rows_only("limit-over-union", &limited_union, &engine);

    // LIMIT over a join cannot push the budget below the join; both
    // executors run it fully, so full metric parity applies.
    let limited_join = LogicalPlan::limit(
        LogicalPlan::inner_join(
            LogicalPlan::scan(Arc::clone(&orders)),
            LogicalPlan::scan(catalog.table_or_err("customer").unwrap()),
            vec![(1, 0)],
        )
        .unwrap(),
        0,
        Some(25),
    );
    assert_equivalent("limit-over-join", &limited_join, &engine);
}

#[test]
fn budgeted_limit_scan_is_bounded() {
    let (catalog, engine) = tpch_engine();
    let lineitem = catalog.table_or_err("lineitem").unwrap();
    let snap = engine.snapshot();
    let total = engine.row_count("lineitem", snap).unwrap();
    let budget = 60usize;
    let plan = LogicalPlan::limit(LogicalPlan::scan(lineitem), 10, Some(50));

    let (_, sm) = execute_at(&plan, &engine, snap).unwrap();
    assert_eq!(sm.rows_scanned, budget, "serial budgeted scan reads exactly the budget");

    let (_, pm) = execute_parallel_at(&plan, &engine, snap, config()).unwrap();
    let bound = budget + THREADS * MORSEL_ROWS;
    assert!(
        pm.rows_scanned <= bound,
        "parallel budgeted scan read {} rows, bound {bound}",
        pm.rows_scanned
    );
    assert!(
        pm.rows_scanned < total,
        "parallel budgeted scan must not read the whole table ({total} rows)"
    );
}

#[test]
fn erp_browser_plan_equivalent_serial_and_parallel() {
    let gen = Erp { journal_rows: 6_000, seed: 4711 };
    let mut catalog = vdm_catalog::Catalog::new();
    let engine = StorageEngine::new();
    let schema = gen.build(&mut catalog, &engine).unwrap();
    let browser = journal_entry_item_browser(&schema).unwrap();

    assert_equivalent("erp-browser-bound", &browser.protected, &engine);
    let optimized = Optimizer::new(Profile::hana()).optimize(&browser.protected).unwrap();
    assert_equivalent("erp-browser-optimized", &optimized, &engine);

    // Paging over the browser (the Fig. 3 interaction) under both paths.
    let paged = LogicalPlan::limit(optimized, 0, Some(100));
    assert_equivalent_rows_only("erp-browser-paged", &paged, &engine);
}

#[test]
fn per_operator_profile_rows_match_across_executors() {
    let (catalog, engine) = tpch_engine();
    let orders = catalog.table_or_err("orders").unwrap();
    let customer = catalog.table_or_err("customer").unwrap();

    // Leaf pipeline with zone-map pruning (filter directly on the scan).
    let pruned = LogicalPlan::filter(
        LogicalPlan::scan(Arc::clone(&orders)),
        Expr::col(0).binary(BinOp::Gt, Expr::int(2_000)),
    )
    .unwrap();
    assert_profile_rows_equal("profile-filter-pruned", &pruned, &engine);

    // Aggregate over a join: blocking operators above a parallel probe.
    let agg = LogicalPlan::aggregate(
        LogicalPlan::inner_join(
            LogicalPlan::scan(Arc::clone(&orders)),
            LogicalPlan::scan(Arc::clone(&customer)),
            vec![(1, 0)],
        )
        .unwrap(),
        vec![(Expr::col(2), "status".into())],
        vec![(AggExpr::count_star(), "n".into())],
    )
    .unwrap();
    assert_profile_rows_equal("profile-join-agg", &agg, &engine);

    // Budgeted path: the parallel scan over-reads in waves but records
    // post-truncation output, so per-node rows still match the serial run.
    let limited = LogicalPlan::limit(LogicalPlan::scan(Arc::clone(&orders)), 10, Some(50));
    assert_profile_rows_equal("profile-limit-over-scan", &limited, &engine);

    let limited_union = LogicalPlan::limit(
        LogicalPlan::union_all(vec![
            LogicalPlan::scan(Arc::clone(&orders)),
            LogicalPlan::scan(orders),
        ])
        .unwrap(),
        0,
        Some(200),
    );
    assert_profile_rows_equal("profile-limit-over-union", &limited_union, &engine);
}

#[test]
fn erp_browser_profile_rows_match_across_executors() {
    let gen = Erp { journal_rows: 6_000, seed: 4711 };
    let mut catalog = vdm_catalog::Catalog::new();
    let engine = StorageEngine::new();
    let schema = gen.build(&mut catalog, &engine).unwrap();
    let browser = journal_entry_item_browser(&schema).unwrap();
    let optimized = Optimizer::new(Profile::hana()).optimize(&browser.protected).unwrap();
    assert_profile_rows_equal("erp-browser-profiled", &optimized, &engine);
}

#[test]
fn fused_projection_chain_over_join_is_exact_and_attributed() {
    let (catalog, engine) = tpch_engine();
    let orders = catalog.table_or_err("orders").unwrap();
    let customer = catalog.table_or_err("customer").unwrap();

    // A stack of *pure column-map* projections (rename, reorder,
    // duplicate — no computed expressions) over a join. The parallel
    // executor fuses the whole chain into one composed column-mapping
    // kernel, but every covered node must still report its own output
    // rows in the profile, matching the serial run node for node.
    let join = LogicalPlan::inner_join(
        LogicalPlan::scan(Arc::clone(&orders)),
        LogicalPlan::scan(customer),
        vec![(1, 0)],
    )
    .unwrap();
    let p1 = LogicalPlan::project(
        join,
        vec![
            (Expr::col(0), "okey".into()),
            (Expr::col(2), "status".into()),
            (Expr::col(1), "cust".into()),
        ],
    )
    .unwrap();
    let p2 = LogicalPlan::project(
        p1,
        vec![
            (Expr::col(1), "status".into()),
            (Expr::col(0), "okey".into()),
            (Expr::col(0), "okey_dup".into()),
        ],
    )
    .unwrap();
    let p3 = LogicalPlan::project(
        p2,
        vec![(Expr::col(2), "okey_dup".into()), (Expr::col(0), "status".into())],
    )
    .unwrap();
    assert_equivalent("fused-chain-over-join", &p3, &engine);
    assert_profile_rows_equal("fused-chain-over-join-profile", &p3, &engine);

    // The same shape directly over a leaf pipeline (scan + filter), so the
    // chain fuses into the morsel loop rather than above a join barrier.
    let leaf =
        LogicalPlan::filter(LogicalPlan::scan(orders), Expr::col(2).eq(Expr::str("O"))).unwrap();
    let l1 = LogicalPlan::project(
        leaf,
        vec![(Expr::col(1), "cust".into()), (Expr::col(0), "okey".into())],
    )
    .unwrap();
    let l2 = LogicalPlan::project(
        l1,
        vec![(Expr::col(1), "okey".into()), (Expr::col(0), "cust".into())],
    )
    .unwrap();
    assert_equivalent("fused-chain-over-leaf", &l2, &engine);
    assert_profile_rows_equal("fused-chain-over-leaf-profile", &l2, &engine);
}

/// Builds a `skew(k int, v int)` table of `rows` rows where one group key
/// owns ~90% of the rows (the partition-wise aggregation's worst case).
fn skew_engine(rows: usize) -> (PlanRef, StorageEngine) {
    use vdm_catalog::TableBuilder;
    use vdm_types::{SqlType, Value};
    let table = Arc::new(
        TableBuilder::new("skew")
            .column("id", SqlType::Int, false)
            .column("k", SqlType::Int, false)
            .column("v", SqlType::Int, false)
            .primary_key(&["id"])
            .build()
            .unwrap(),
    );
    let engine = StorageEngine::new();
    engine.create_table(Arc::clone(&table)).unwrap();
    let hot = rows * 9 / 10;
    engine
        .insert(
            "skew",
            (0..rows)
                .map(|i| {
                    let k = if i < hot { 0 } else { (i % 100) as i64 + 1 };
                    vec![Value::Int(i as i64), Value::Int(k), Value::Int((i % 7) as i64)]
                })
                .collect(),
        )
        .unwrap();
    engine.merge_delta("skew").unwrap();
    (LogicalPlan::scan(table), engine)
}

#[test]
fn skewed_aggregation_is_exact_at_every_thread_count() {
    let (scan, engine) = skew_engine(20_000);
    // 90% of rows hash to one group → one radix partition carries almost
    // all the build work; stealing must rebalance it and the merged output
    // must still be bit-identical to the serial first-seen group order.
    let agg = LogicalPlan::aggregate(
        scan.clone(),
        vec![(Expr::col(1), "k".into())],
        vec![
            (AggExpr::count_star(), "n".into()),
            (AggExpr::new(AggFunc::Sum, Expr::col(2)), "total".into()),
        ],
    )
    .unwrap();
    assert_equivalent("skewed-aggregate", &agg, &engine);
    assert_profile_rows_equal("skewed-aggregate-profile", &agg, &engine);

    // Group count >> partition count: the partition-wise path with many
    // distinct keys per partition (a computed key also exercises the
    // row-eval scatter fallback next to the columnar one above).
    let wide = LogicalPlan::aggregate(
        scan,
        vec![(
            Expr::col(0).binary(
                BinOp::Sub,
                Expr::col(0)
                    .binary(BinOp::Div, Expr::int(1_000))
                    .binary(BinOp::Mul, Expr::int(1_000)),
            ),
            "b".into(),
        )],
        vec![(AggExpr::new(AggFunc::Max, Expr::col(2)), "m".into())],
    )
    .unwrap();
    assert_equivalent("wide-aggregate", &wide, &engine);
}

#[test]
fn edge_case_batches_are_exact_at_every_thread_count() {
    let (scan, engine) = skew_engine(1_000);

    // All-false selection: every morsel filters to zero rows, and the
    // fused projection above it must map empty batches without panicking.
    let none = LogicalPlan::project(
        LogicalPlan::filter(scan.clone(), Expr::col(0).binary(BinOp::Lt, Expr::int(0))).unwrap(),
        vec![(Expr::col(1), "k".into()), (Expr::col(1), "k_dup".into())],
    )
    .unwrap();
    assert_equivalent("all-false-selection", &none, &engine);

    // Single-row batches: a point filter leaves exactly one surviving row
    // among many empty morsels.
    let one = LogicalPlan::project(
        LogicalPlan::filter(scan.clone(), Expr::col(0).eq(Expr::int(500))).unwrap(),
        vec![(Expr::col(2), "v".into())],
    )
    .unwrap();
    assert_equivalent("single-row-selection", &one, &engine);

    // Aggregate over an empty input (all morsels empty after the filter).
    let empty_agg = LogicalPlan::aggregate(
        LogicalPlan::filter(scan, Expr::col(0).binary(BinOp::Lt, Expr::int(0))).unwrap(),
        vec![(Expr::col(1), "k".into())],
        vec![(AggExpr::count_star(), "n".into())],
    )
    .unwrap();
    assert_equivalent("aggregate-over-empty", &empty_agg, &engine);
}

#[test]
fn every_paper_profile_agrees_across_executors() {
    // The optimizer may rewrite plans into any shape; whatever it emits,
    // serial and parallel execution must agree.
    let (catalog, engine) = tpch_engine();
    let query = vdm_bench::queries::paging(&catalog).unwrap();
    for profile in Profile::paper_systems() {
        let optimized = Optimizer::new(profile.clone()).optimize(&query).unwrap();
        assert_equivalent_rows_only(
            &format!("paging under {}", profile.name()),
            &optimized,
            &engine,
        );
    }
}
