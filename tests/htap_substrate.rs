//! HTAP substrate scenarios: concurrent OLTP writes with OLAP snapshot
//! reads, delta-merge behaviour under load, and the NSE page-loadable
//! simulation for write-mostly journals (§2.2 of the paper).

use std::sync::Arc;
use vdm_catalog::TableBuilder;
use vdm_exec::execute_at;
use vdm_expr::{AggExpr, AggFunc, Expr};
use vdm_plan::LogicalPlan;
use vdm_storage::{LoadMode, StorageEngine};
use vdm_types::{SqlType, Value};

fn journal_table() -> vdm_catalog::TableDef {
    TableBuilder::new("journal")
        .column("id", SqlType::Int, false)
        .column("amount", SqlType::Int, false)
        .primary_key(&["id"])
        .build()
        .unwrap()
}

#[test]
fn concurrent_writers_and_snapshot_readers() {
    let engine = Arc::new(StorageEngine::new());
    let def = Arc::new(journal_table());
    engine.create_table(Arc::clone(&def)).unwrap();
    engine
        .insert("journal", (0..100).map(|i| vec![Value::Int(i), Value::Int(1)]).collect())
        .unwrap();

    let scan = LogicalPlan::scan(def);
    let sum_plan = LogicalPlan::aggregate(
        scan,
        vec![],
        vec![(AggExpr::new(AggFunc::Sum, Expr::col(1)), "total".into())],
    )
    .unwrap();

    // Writers append; readers pin snapshots and re-read them — a pinned
    // snapshot must return the same answer every time, regardless of
    // concurrent commits.
    let mut handles = Vec::new();
    for w in 0..3 {
        let engine = Arc::clone(&engine);
        handles.push(std::thread::spawn(move || {
            for i in 0..200 {
                engine
                    .insert("journal", vec![vec![Value::Int(1_000 + w * 1_000 + i), Value::Int(1)]])
                    .unwrap();
            }
        }));
    }
    for _ in 0..3 {
        let engine = Arc::clone(&engine);
        let plan = sum_plan.clone();
        handles.push(std::thread::spawn(move || {
            for _ in 0..30 {
                let snap = engine.snapshot();
                let (first, _) = execute_at(&plan, &engine, snap).unwrap();
                let (second, _) = execute_at(&plan, &engine, snap).unwrap();
                assert_eq!(first.row(0), second.row(0), "pinned snapshot must be stable");
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let (final_batch, _) = execute_at(&sum_plan, &engine, engine.snapshot()).unwrap();
    assert_eq!(final_batch.row(0)[0], Value::Int(100 + 3 * 200));
}

#[test]
fn delta_merge_under_writes_is_transparent() {
    let engine = StorageEngine::new();
    engine.create_table(Arc::new(journal_table())).unwrap();
    for round in 0..5i64 {
        engine
            .insert(
                "journal",
                (0..50).map(|i| vec![Value::Int(round * 50 + i), Value::Int(1)]).collect(),
            )
            .unwrap();
        let before = engine.row_count("journal", engine.snapshot()).unwrap();
        engine.merge_delta("journal").unwrap();
        let after = engine.row_count("journal", engine.snapshot()).unwrap();
        assert_eq!(before, after, "merge round {round} changed visible rows");
        let (main, delta) = engine.fragment_sizes("journal").unwrap();
        assert_eq!(delta, 0);
        assert_eq!(main as i64, (round + 1) * 50);
    }
}

#[test]
fn nse_page_loadable_journal() {
    let engine = StorageEngine::new();
    let def = Arc::new(journal_table());
    engine.create_table(Arc::clone(&def)).unwrap();
    engine
        .insert("journal", (0..1_000).map(|i| vec![Value::Int(i), Value::Int(1)]).collect())
        .unwrap();
    engine.merge_delta("journal").unwrap();

    // Column loadable (default): no page traffic at all.
    let snap = engine.snapshot();
    engine.scan("journal", snap).unwrap();
    let stats = engine.page_stats("journal").unwrap();
    assert_eq!((stats.loads, stats.hits), (0, 0));

    // Switch to page loadable — the §2.2 metadata change + reload.
    engine.set_load_mode("journal", LoadMode::PageLoadable { page_rows: 100 }, 20).unwrap();
    engine.scan("journal", snap).unwrap();
    let cold = engine.page_stats("journal").unwrap();
    assert_eq!(cold.loads, 10, "1 000 rows / 100 per page = 10 faults");
    engine.scan("journal", snap).unwrap();
    let warm = engine.page_stats("journal").unwrap();
    assert_eq!(warm.loads, 10, "second scan is buffer-resident");
    assert_eq!(warm.hits, 10);
    assert!(warm.hit_rate() > 0.49);

    // A pushed-down LIMIT touches only the pages it needs.
    let page = LogicalPlan::limit(LogicalPlan::scan(def), 0, Some(5));
    engine.set_load_mode("journal", LoadMode::PageLoadable { page_rows: 100 }, 20).unwrap();
    vdm_exec::execute(&page, &engine).unwrap();
    let paged = engine.page_stats("journal").unwrap();
    assert_eq!(paged.loads, 1, "limit 5 faults a single page, not ten");

    // A tiny buffer thrashes: full scans evict and refault.
    engine.set_load_mode("journal", LoadMode::PageLoadable { page_rows: 100 }, 3).unwrap();
    engine.scan("journal", snap).unwrap();
    engine.scan("journal", snap).unwrap();
    let thrash = engine.page_stats("journal").unwrap();
    assert!(thrash.evictions > 0, "3-page buffer cannot hold a 10-page table");
    assert!(thrash.hit_rate() < 0.5, "hit rate collapses: {thrash:?}");
}

#[test]
fn zone_maps_prune_merged_blocks() {
    let engine = StorageEngine::new();
    let def = Arc::new(journal_table());
    engine.create_table(Arc::clone(&def)).unwrap();
    // Time-clustered ids: consecutive blocks hold disjoint ranges, like
    // the range-partitioned-by-time journals the paper describes.
    engine
        .insert("journal", (0..8_192).map(|i| vec![Value::Int(i), Value::Int(1)]).collect())
        .unwrap();
    engine.merge_delta("journal").unwrap();

    let pred = Expr::col(0).binary(vdm_expr::BinOp::GtEq, Expr::int(8_000));
    let plan = LogicalPlan::filter(LogicalPlan::scan(Arc::clone(&def)), pred.clone()).unwrap();
    let (batch, metrics) = execute_at(&plan, &engine, engine.snapshot()).unwrap();
    assert_eq!(batch.num_rows(), 192);
    assert!(
        metrics.rows_scanned < 2_048,
        "pruning must skip most of the 8 192 merged rows: {metrics:?}"
    );
    assert!(engine.blocks_skipped("journal").unwrap() >= 7, "7 of 8 blocks prunable");

    // Unmerged delta rows are always visible (never pruned away).
    engine.insert("journal", vec![vec![Value::Int(9_000), Value::Int(1)]]).unwrap();
    let plan = LogicalPlan::filter(LogicalPlan::scan(def), pred).unwrap();
    let (batch, _) = execute_at(&plan, &engine, engine.snapshot()).unwrap();
    assert_eq!(batch.num_rows(), 193, "delta row found without a merge");
}
