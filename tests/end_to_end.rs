//! End-to-end integration: SQL text → parse → bind → optimize → execute,
//! across every optimizer profile.
//!
//! The fundamental soundness property of the whole reproduction: **every
//! capability profile computes the same answers** — profiles only change
//! how much work the plan does.

use vdm_core::Database;
use vdm_optimizer::Profile;
use vdm_types::Value;

/// Queries spanning every feature: joins, aggregation, unions, paging,
/// views, macros, declared cardinalities.
const QUERIES: &[&str] = &[
    "select o_orderkey from orders left join customer on o_custkey = c_custkey",
    "select o.o_orderkey, c.c_name from orders o left join customer c on o.o_custkey = c.c_custkey where o.o_totalprice > 500.00",
    "select c_mktsegment, count(*) as n, sum(o_totalprice) as total from orders o left join customer c on o.o_custkey = c.c_custkey group by c_mktsegment order by n desc",
    "select n_name, count(*) as suppliers from supplier s join nation n on s.s_nationkey = n.n_nationkey group by n_name order by suppliers desc, n_name",
    "select l_orderkey, sum(l_quantity) as qty from lineitem group by l_orderkey having sum(l_quantity) > 100 order by qty desc limit 5",
    "select o_orderkey from orders left outer many to one join customer on o_custkey = c_custkey order by o_orderkey limit 7 offset 3",
    "select c_custkey as k from customer union all select s_suppkey as k from supplier",
    "select distinct c_nationkey from customer order by c_nationkey",
    "select x.n from (select count(*) as n from lineitem) x",
    "select upper(c_name) as cname from customer where c_custkey <= 3 order by cname",
    "select case when o_totalprice > 1000.00 then 'big' else 'small' end as bucket, count(*) from orders group by case when o_totalprice > 1000.00 then 'big' else 'small' end order by bucket",
];

fn tpch_db(profile: Profile) -> Database {
    let mut db = Database::new(profile);
    let gen = vdm_data::tpch::Tpch { sf: 0.02, seed: 42, with_foreign_keys: false };
    let (catalog, engine) = db.catalog_and_engine();
    gen.build(catalog, engine).expect("TPC-H load");
    db
}

fn sorted(mut rows: Vec<Vec<Value>>) -> Vec<Vec<Value>> {
    rows.sort_by(|a, b| {
        for (x, y) in a.iter().zip(b.iter()) {
            let c = x.total_cmp(y);
            if c != std::cmp::Ordering::Equal {
                return c;
            }
        }
        std::cmp::Ordering::Equal
    });
    rows
}

#[test]
fn all_profiles_agree_on_results() {
    let mut reference: Vec<Vec<Vec<Value>>> = Vec::new();
    {
        let db = tpch_db(Profile::hana());
        for q in QUERIES {
            reference.push(sorted(db.query(q).unwrap_or_else(|e| panic!("{q}: {e}")).to_rows()));
        }
    }
    for profile in
        [Profile::postgres(), Profile::system_x(), Profile::system_y(), Profile::system_z()]
    {
        let name = profile.name().to_string();
        let db = tpch_db(profile);
        for (q, want) in QUERIES.iter().zip(&reference) {
            let got = sorted(db.query(q).unwrap_or_else(|e| panic!("{name} / {q}: {e}")).to_rows());
            assert_eq!(&got, want, "profile {name} diverged on: {q}");
        }
    }
}

#[test]
fn optimized_and_unoptimized_plans_agree() {
    let db = tpch_db(Profile::hana());
    for q in QUERIES {
        let plan = db.plan(q).unwrap();
        let (opt, _) = db.execute_plan(&plan).unwrap();
        let (raw, _) = db.execute_plan_unoptimized(&plan).unwrap();
        assert_eq!(
            sorted(opt.to_rows()),
            sorted(raw.to_rows()),
            "optimization changed results of: {q}"
        );
    }
}

#[test]
fn hybrid_workload_transactions_visible_to_analytics() {
    // The HTAP promise: a write is immediately visible to the analytical
    // query — no ETL delay.
    let mut db = tpch_db(Profile::hana());
    let before = db.query("select count(*) from orders").unwrap().row(0)[0].as_int().unwrap();
    db.execute("insert into orders values (999999, 1, 'O', 123.45, cast(10000 as date))").unwrap();
    let after = db.query("select count(*) from orders").unwrap().row(0)[0].as_int().unwrap();
    assert_eq!(after, before + 1);
    // And a delete disappears immediately.
    db.engine().delete_where("orders", &|row| row[0] == Value::Int(999999)).unwrap();
    let last = db.query("select count(*) from orders").unwrap().row(0)[0].as_int().unwrap();
    assert_eq!(last, before);
}

#[test]
fn delta_merge_preserves_query_results() {
    let db = tpch_db(Profile::hana());
    let q = "select c_mktsegment, count(*) from customer group by c_mktsegment order by 1";
    let before = db.query(q).unwrap().to_rows();
    db.engine().merge_delta("customer").unwrap();
    let after = db.query(q).unwrap().to_rows();
    assert_eq!(before, after, "delta merge must be invisible to queries");
    let (main, delta) = db.engine().fragment_sizes("customer").unwrap();
    assert!(main > 0);
    assert_eq!(delta, 0);
}

#[test]
fn expression_macro_end_to_end_margin() {
    // §7.2: the paper's margin example over TPC-H.
    let mut db = tpch_db(Profile::hana());
    db.execute(
        "create view vlineitem as
         select l.l_orderkey, l.l_extendedprice, l.l_discount, ps.ps_supplycost
         from lineitem l
         join partsupp ps on l.l_partkey = ps.ps_partkey and l.l_suppkey = ps.ps_suppkey
         with expression macros (
             1 - sum(ps_supplycost) / sum(l_extendedprice * (1 - l_discount)) as margin
         )",
    )
    .unwrap();
    let rows = db
        .query("select l_orderkey, expression_macro(margin) from vlineitem group by l_orderkey order by l_orderkey limit 5")
        .unwrap();
    assert_eq!(rows.num_rows(), 5);
    // Hand-written equivalent must agree.
    let manual = db
        .query(
            "select l_orderkey, 1 - sum(ps_supplycost) / sum(l_extendedprice * (1 - l_discount)) as margin
             from vlineitem group by l_orderkey order by l_orderkey limit 5",
        )
        .unwrap();
    for (a, b) in rows.to_rows().iter().zip(manual.to_rows()) {
        assert_eq!(a[0], b[0]);
        let x = a[1].as_dec().unwrap().to_f64();
        let y = b[1].as_dec().unwrap().to_f64();
        assert!((x - y).abs() < 1e-9, "macro vs manual margin: {x} vs {y}");
    }
}

#[test]
fn precision_loss_sql_round_trip() {
    let db = tpch_db(Profile::hana());
    let strict = db.query("select sum(round(o_totalprice * 1.11, 2)) from orders").unwrap().row(0)
        [0]
    .as_dec()
    .unwrap();
    let loose = db
        .query("select allow_precision_loss(sum(round(o_totalprice * 1.11, 2))) from orders")
        .unwrap()
        .row(0)[0]
        .as_dec()
        .unwrap();
    let delta = (strict.to_f64() - loose.to_f64()).abs();
    let n_orders = db.query("select count(*) from orders").unwrap().row(0)[0].as_int().unwrap();
    assert!(delta <= 0.005 * n_orders as f64, "delta {delta} exceeds rounding bound");
}
