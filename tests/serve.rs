//! Integration tests for the `vdm-serve` serving layer: plan-cache
//! invalidation (digest-asserted against cold optimizes), concurrent
//! session equivalence on the Fig. 3 browser, and prepared-statement
//! parameter handling.

use vdm_core::{CacheOutcome, Database, QueryEnv};
use vdm_data::erp::{journal_entry_item_browser, Erp};
use vdm_exec::ParallelConfig;
use vdm_optimizer::Profile;
use vdm_plan::plan_digest_canonical;
use vdm_serve::Server;
use vdm_sql::Statement;
use vdm_types::Value;

fn select_of(sql: &str) -> vdm_sql::SelectStmt {
    let (stmt, _) = vdm_sql::parse_one_with_params(sql).expect("parse");
    match stmt {
        Statement::Select(sel) => sel,
        other => panic!("expected SELECT, got {other:?}"),
    }
}

/// Binds and optimizes `sql` from scratch — no cache anywhere — and
/// returns the plan digest. This is the reference every cached plan must
/// match bit-for-bit.
fn cold_digest(db: &Database, sql: &str, params: &[Value]) -> u64 {
    let sel = select_of(sql);
    let types = vdm_core::param_types_of(params);
    let bound = db.state().binder().with_param_types(&types).bind_select(&sel).expect("bind");
    let (plan, _) = db.state().optimizer.optimize_traced(&bound).expect("optimize");
    plan_digest_canonical(&plan)
}

/// Resolves `sql` through the session path's plan cache and reports
/// (digest, hit-or-miss).
fn cached_digest(db: &Database, sql: &str, params: &[Value]) -> (u64, CacheOutcome) {
    let sel = select_of(sql);
    let shape = vdm_sql::canonical_shape(sql).expect("shape");
    let env = QueryEnv {
        state: db.state(),
        engine: db.engine(),
        plan_cache: db.plan_cache(),
        parallel: ParallelConfig::default(),
    };
    let resolved = env.select_plan(&sel, Some(&shape), params).expect("plan");
    (plan_digest_canonical(&resolved.plan), resolved.outcome)
}

#[test]
fn prepared_plans_reoptimize_after_invalidation_and_match_cold_optimize() {
    let mut db = Database::new(Profile::hana());
    db.execute("create table t (k bigint primary key, v text not null)").unwrap();
    let sql = "select v from t where k = ?";
    let params = [Value::Int(1)];

    // Cold fill, then steady-state hit; the cached plan IS the cold plan.
    let (d1, o1) = cached_digest(&db, sql, &params);
    assert_eq!(o1, CacheOutcome::Miss);
    assert_eq!(d1, cold_digest(&db, sql, &params));
    let (d2, o2) = cached_digest(&db, sql, &params);
    assert_eq!((d2, o2), (d1, CacheOutcome::Hit));

    // CREATE TABLE bumps the metadata version: the next lookup must
    // re-optimize, and the re-optimized plan must equal a cold optimize.
    db.execute("create table audit_log (id bigint primary key)").unwrap();
    let (d3, o3) = cached_digest(&db, sql, &params);
    assert_eq!(o3, CacheOutcome::Miss, "CREATE TABLE must invalidate");
    assert_eq!(d3, cold_digest(&db, sql, &params));

    // DROP invalidates the same way.
    db.execute("drop table audit_log").unwrap();
    let (d4, o4) = cached_digest(&db, sql, &params);
    assert_eq!(o4, CacheOutcome::Miss, "DROP TABLE must invalidate");
    assert_eq!(d4, cold_digest(&db, sql, &params));

    // Registering a (plan-level) view is DDL too.
    let view_plan = db.state().binder().bind_select(&select_of("select k from t")).unwrap();
    db.register_view("t_keys", view_plan);
    let (d5, o5) = cached_digest(&db, sql, &params);
    assert_eq!(o5, CacheOutcome::Miss, "view registration must invalidate");
    assert_eq!(d5, cold_digest(&db, sql, &params));

    // A profile switch changes the cache key, so the statement
    // re-optimizes under the new capability set...
    db.set_profile(Profile::postgres());
    let (d6, o6) = cached_digest(&db, sql, &params);
    assert_eq!(o6, CacheOutcome::Miss, "profile switch must re-optimize");
    assert_eq!(d6, cold_digest(&db, sql, &params));
    // ...and switching back revalidates the old entry instead of paying a
    // third optimize.
    db.set_profile(Profile::hana());
    let (d7, o7) = cached_digest(&db, sql, &params);
    assert_eq!((d7, o7), (d5, CacheOutcome::Hit));
}

#[test]
fn server_sessions_observe_invalidation() {
    let server = Server::new(Profile::hana());
    let session = server.session();
    session
        .execute_script(
            "create table t (k bigint primary key, v text not null);
             insert into t values (1, 'one'), (2, 'two');",
        )
        .unwrap();
    let p = session.prepare("select v from t where k = ?").unwrap();

    let stats = |server: &Server| server.plan_cache().stats();
    let s0 = stats(&server);
    p.execute(&[Value::Int(1)]).unwrap();
    p.execute(&[Value::Int(2)]).unwrap();
    let s1 = stats(&server);
    assert_eq!((s1.misses - s0.misses, s1.hits - s0.hits), (1, 1));

    // DDL from another session invalidates the prepared plan.
    server.session().execute("create table u (k bigint primary key)").unwrap();
    p.execute(&[Value::Int(1)]).unwrap();
    let s2 = stats(&server);
    assert_eq!(s2.misses - s1.misses, 1, "prepared statement must re-optimize after DDL");

    // Profile switches re-optimize; switching back re-uses the old entry.
    server.set_profile(Profile::postgres());
    p.execute(&[Value::Int(1)]).unwrap();
    let s3 = stats(&server);
    assert_eq!(s3.misses - s2.misses, 1, "profile switch must re-optimize");
    server.set_profile(Profile::hana());
    p.execute(&[Value::Int(1)]).unwrap();
    let s4 = stats(&server);
    assert_eq!(s4.hits - s3.hits, 1, "switching back must revalidate the cached plan");
}

/// ERP server with the Fig. 3 browser registered as a queryable view.
fn browser_server(journal_rows: usize) -> Server {
    let mut db = Database::new(Profile::hana());
    let erp = Erp { journal_rows, seed: 4711 };
    let (catalog, engine) = db.catalog_and_engine();
    let schema = erp.build(catalog, engine).expect("ERP generation");
    db.invalidate_plans();
    let browser = journal_entry_item_browser(&schema).expect("browser view");
    db.register_view("journal_entry_item_browser", browser.protected.clone());
    Server::from_database(db)
}

const BROWSER_QUERIES: [&str; 3] = [
    "select AccountingDocument, LineItem, Ledger, PostingDate, AmountInCompanyCodeCurrency, \
     SupplierName, CustomerName from journal_entry_item_browser \
     where CompanyCode = ? and FiscalYear = ? \
     order by AccountingDocument, LineItem, Ledger limit 50",
    "select LineItem, Ledger, AmountInCompanyCodeCurrency, DebitCreditCode, CompanyName \
     from journal_entry_item_browser \
     where CompanyCode = ? and FiscalYear = ? and AccountingDocument = ? \
     order by LineItem, Ledger",
    "select FiscalYear, count(*) as n from journal_entry_item_browser \
     where CompanyCode = ? group by FiscalYear order by FiscalYear",
];

fn browser_params(shape: usize, company: i64) -> Vec<Value> {
    match shape {
        0 => vec![Value::Int(company), Value::Int(2024)],
        1 => vec![Value::Int(company), Value::Int(2024), Value::Int(company * 7 + 1)],
        _ => vec![Value::Int(company)],
    }
}

/// One full pass over the browser workload: every shape × companies 1..=4,
/// rows rendered for comparison.
fn browser_workload(session: &vdm_serve::Session) -> Vec<Vec<Vec<Value>>> {
    let prepared: Vec<_> =
        BROWSER_QUERIES.iter().map(|sql| session.prepare(sql).expect("prepare")).collect();
    let mut out = Vec::new();
    for company in 1..=4 {
        for (shape, p) in prepared.iter().enumerate() {
            let batch = p.execute(&browser_params(shape, company)).expect("browser query");
            out.push(batch.to_rows());
        }
    }
    out
}

#[test]
fn concurrent_sessions_match_serial_browser_results() {
    let server = browser_server(600);
    // Serial reference, one session.
    let reference = browser_workload(&server.session());
    assert!(
        reference.iter().any(|rows| !rows.is_empty()),
        "reference workload returned no rows at all"
    );
    // Six sessions run the identical workload concurrently; every one must
    // be bit-identical to the serial pass.
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..6)
            .map(|_| {
                let session = server.session();
                scope.spawn(move || browser_workload(&session))
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().expect("session thread"), reference);
        }
    });
    // The repeated shapes were served from the plan cache.
    let stats = server.plan_cache().stats();
    assert!(stats.hits > stats.misses * 5, "expected overwhelmingly cache hits, got {stats:?}");
}

#[test]
fn concurrent_dcv_reads_see_consistent_snapshots() {
    use std::sync::atomic::{AtomicBool, Ordering};
    use vdm_cache::CacheMode;

    // Invariant: every committed state of `t` holds rows (k, 3k) for k in
    // a contiguous range with multiple-of-100 bounds (each write is one
    // 100-row batch). A reader observing anything else saw a torn batch.
    let mut db = Database::hana();
    db.execute_script("create table t (k bigint primary key, v bigint not null);").unwrap();
    let seed: Vec<Vec<Value>> = (0..100).map(|k| vec![Value::Int(k), Value::Int(k * 3)]).collect();
    db.engine().insert("t", seed).unwrap();
    let server = Server::from_database(db);
    server
        .create_cached_view("live", "select k, v from t where v >= 0", CacheMode::Dynamic)
        .unwrap();

    let done = AtomicBool::new(false);
    std::thread::scope(|scope| {
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let session = server.session();
                let done = &done;
                scope.spawn(move || {
                    let mut reads = 0usize;
                    while !done.load(Ordering::Relaxed) || reads == 0 {
                        let (batch, _) = session.read_cached_with_outcome("live").expect("read");
                        let mut keys: Vec<i64> = Vec::with_capacity(batch.num_rows());
                        for i in 0..batch.num_rows() {
                            let row = batch.row(i);
                            let (Value::Int(k), Value::Int(v)) = (row[0].clone(), row[1].clone())
                            else {
                                panic!("unexpected row {row:?}")
                            };
                            assert_eq!(v, k * 3, "torn row: {row:?}");
                            keys.push(k);
                        }
                        keys.sort_unstable();
                        let lo = *keys.first().expect("view is never empty");
                        let hi = *keys.last().unwrap() + 1;
                        assert_eq!(keys.len() as i64, hi - lo, "non-contiguous keys: torn batch");
                        assert_eq!(lo % 100, 0, "partial batch visible at lo={lo}");
                        assert_eq!(hi % 100, 0, "partial batch visible at hi={hi}");
                        reads += 1;
                    }
                    reads
                })
            })
            .collect();
        // Writer: grow by five 100-row batches, then trim three off the
        // front — inserts append, deletes retract, all while readers
        // maintain the DCV concurrently.
        for phase in 1..=5i64 {
            let rows: Vec<Vec<Value>> = (phase * 100..(phase + 1) * 100)
                .map(|k| vec![Value::Int(k), Value::Int(k * 3)])
                .collect();
            server.engine().insert("t", rows).unwrap();
        }
        for phase in 0..3i64 {
            let (lo, hi) = (phase * 100, phase * 100 + 100);
            server
                .engine()
                .delete_where("t", &|r| matches!(r[0], Value::Int(k) if k >= lo && k < hi))
                .unwrap();
        }
        done.store(true, Ordering::Relaxed);
        for h in readers {
            assert!(h.join().expect("reader thread") > 0);
        }
    });

    // Final state: exactly keys 300..600, reached without a full refresh.
    let (batch, _) = server.session().read_cached_with_outcome("live").unwrap();
    assert_eq!(batch.num_rows(), 300);
    let stats = server.cached_view("live").unwrap().stats();
    assert!(stats.incremental_refreshes > 0, "{stats:?}");
    assert_eq!(stats.full_refreshes, 1, "only the registration materialization: {stats:?}");
}

#[test]
fn prepared_parameter_handling() {
    let server = Server::new(Profile::hana());
    let session = server.session();
    session
        .execute_script(
            "create table t (k bigint primary key, v text not null);
             insert into t values (1, 'one'), (2, 'two'), (3, 'three');",
        )
        .unwrap();

    // `?` and `$1` lex to the same canonical shape and share a plan.
    let s0 = server.plan_cache().stats();
    session.query_with_params("select v from t where k = ?", &[Value::Int(1)]).unwrap();
    session.query_with_params("select v from t where k = $1", &[Value::Int(1)]).unwrap();
    let s1 = server.plan_cache().stats();
    assert_eq!((s1.misses - s0.misses, s1.hits - s0.hits), (1, 1));

    // Text parameters bind with their own type signature.
    let by_name = session.prepare("select k from t where v = ?").unwrap();
    let rows = by_name.execute(&[Value::str("two")]).unwrap();
    assert_eq!(rows.row(0)[0], Value::Int(2));

    // NULL parameters are legal and match nothing under `=`.
    let by_key = session.prepare("select v from t where k = ?").unwrap();
    assert_eq!(by_key.execute(&[Value::Null]).unwrap().num_rows(), 0);

    // Arity is checked before binding.
    let err = by_key.execute(&[]).unwrap_err();
    assert!(err.to_string().contains("expects 1 parameter"), "{err}");

    // Preparing non-SELECT statements is rejected.
    assert!(session.prepare("create table u (k bigint primary key)").is_err());
    assert!(session.query("drop table t").is_err());
}
