//! The annotated-plan core, exercised end to end: property derivation on
//! a DAG-shaped plan must happen once per *node*, not once per *path*,
//! and the rewrite driver must keep untouched shared subtrees shared.

use std::collections::HashMap;
use std::sync::Arc;
use vdm_catalog::{TableBuilder, TableDef};
use vdm_expr::{BinOp, Expr};
use vdm_optimizer::{Optimizer, Profile};
use vdm_plan::{plan_digest, DeriveOptions, LogicalPlan, PlanRef, PropertyCache};
use vdm_types::SqlType;

fn table_a() -> Arc<TableDef> {
    Arc::new(
        TableBuilder::new("ta")
            .column("a_k", SqlType::Int, false)
            .column("a_v", SqlType::Int, false)
            .primary_key(&["a_k"])
            .build()
            .unwrap(),
    )
}

/// Key-less table: joins against it are never augmentation joins, so the
/// UAJ/ASJ rules leave the shape below alone.
fn table_c() -> Arc<TableDef> {
    Arc::new(
        TableBuilder::new("tc")
            .column("c_k", SqlType::Int, false)
            .column("c_v", SqlType::Int, false)
            .build()
            .unwrap(),
    )
}

/// A DAG: one shared filtered subquery joined from two union branches,
/// via a single `Arc` (the VDM pattern — one view instance referenced by
/// many consumers).
fn dag_plan() -> (PlanRef, PlanRef) {
    let shared = LogicalPlan::filter(
        LogicalPlan::scan(table_c()),
        Expr::col(1).binary(BinOp::Gt, Expr::int(5)),
    )
    .unwrap();
    let branch = |anchor: PlanRef, shared: &PlanRef| {
        let join = LogicalPlan::inner_join(anchor, shared.clone(), vec![(0, 0)]).unwrap();
        let exprs =
            (0..join.schema().len()).map(|i| (Expr::col(i), format!("o{i}"))).collect::<Vec<_>>();
        LogicalPlan::project(join, exprs).unwrap()
    };
    let b1 = branch(LogicalPlan::scan(table_a()), &shared);
    let b2 = branch(LogicalPlan::scan(table_a()), &shared);
    (LogicalPlan::union_all(vec![b1, b2]).unwrap(), shared)
}

/// Counts how often each physical node (by address) is reachable,
/// walking every DAG edge.
fn ptr_counts(plan: &PlanRef, counts: &mut HashMap<*const LogicalPlan, usize>) {
    *counts.entry(Arc::as_ptr(plan)).or_insert(0) += 1;
    for child in plan.children() {
        ptr_counts(child, counts);
    }
}

#[test]
fn shared_subtree_is_derived_once() {
    let (plan, shared) = dag_plan();
    let props = PropertyCache::new();
    let opts = DeriveOptions::all();
    props.unique_sets(&plan, &opts);
    let first = props.stats();
    // The shared subquery sits under both union branches: its second
    // encounter is a hit, so hits > 0 even on a cold cache.
    assert!(first.hits > 0, "shared subtree must hit the cache: {first:?}");
    // A second probe of the shared node itself re-derives nothing.
    props.unique_sets(&shared, &opts);
    let second = props.stats();
    assert_eq!(second.misses, first.misses, "second probe must not re-derive");
    assert_eq!(second.hits, first.hits + 1);
}

#[test]
fn passthrough_mode_re_derives_every_probe() {
    let (plan, _) = dag_plan();
    let props = PropertyCache::passthrough();
    let opts = DeriveOptions::all();
    props.unique_sets(&plan, &opts);
    props.unique_sets(&plan, &opts);
    let stats = props.stats();
    assert_eq!(stats.hits, 0, "passthrough mode must never report a hit");
    assert_eq!(stats.entries, 0, "passthrough mode must not retain entries");
}

#[test]
fn optimizer_preserves_dag_sharing() {
    let (plan, _) = dag_plan();
    let mut before = HashMap::new();
    ptr_counts(&plan, &mut before);
    assert!(before.values().any(|&c| c >= 2), "input plan must share a subtree");

    let optimized = Optimizer::hana().optimize(&plan).unwrap();
    let mut after = HashMap::new();
    ptr_counts(&optimized, &mut after);
    assert!(
        after.values().any(|&c| c >= 2),
        "rewrite driver must keep the untouched shared subtree as one Arc"
    );
}

#[test]
fn cached_and_passthrough_agree_at_every_profile() {
    let (plan, _) = dag_plan();
    for profile in Profile::paper_systems() {
        let cached = Optimizer::new(profile.clone()).optimize(&plan).unwrap();
        let passthrough =
            Optimizer::new(profile.clone()).with_property_cache(false).optimize(&plan).unwrap();
        assert_eq!(
            plan_digest(&cached),
            plan_digest(&passthrough),
            "profile {} must optimize identically with and without the cache",
            profile.name()
        );
    }
}
