//! SQL front-end robustness: the parser and binder must never panic —
//! whatever bytes arrive, the answer is `Ok` or a clean `VdmError`.

use proptest::prelude::*;
use vdm_catalog::Catalog;
use vdm_plan::ViewRegistry;
use vdm_sql::{parse, Binder, MacroRegistry, Statement};

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    /// Arbitrary UTF-8 never panics the lexer/parser.
    #[test]
    fn parser_never_panics_on_arbitrary_input(s in ".{0,200}") {
        let _ = parse(&s);
    }

    /// SQL-shaped token soup never panics either (denser keyword mix than
    /// plain random strings reach).
    #[test]
    fn parser_never_panics_on_token_soup(tokens in prop::collection::vec(
        prop_oneof![
            Just("select"), Just("from"), Just("where"), Just("group"), Just("by"),
            Just("left"), Just("outer"), Just("join"), Just("on"), Just("union"),
            Just("all"), Just("limit"), Just("offset"), Just("order"), Just("case"),
            Just("when"), Just("then"), Just("end"), Just("many"), Just("to"),
            Just("one"), Just("("), Just(")"), Just(","), Just("*"), Just("="),
            Just("t"), Just("x"), Just("1"), Just("1.5"), Just("'s'"), Just("as"),
            Just("and"), Just("or"), Just("not"), Just("null"), Just("count"),
        ],
        0..40,
    )) {
        let sql = tokens.join(" ");
        let _ = parse(&sql);
    }

    /// Whatever parses also binds without panicking (against an empty
    /// catalog, so most statements fail name resolution — cleanly).
    #[test]
    fn binder_never_panics(tokens in prop::collection::vec(
        prop_oneof![
            Just("select"), Just("from"), Just("where"), Just("t"), Just("a"),
            Just("b"), Just("join"), Just("on"), Just("="), Just("1"), Just("("),
            Just(")"), Just(","), Just("*"), Just("count"), Just("sum"),
            Just("group"), Just("by"), Just("limit"), Just("5"),
        ],
        0..30,
    )) {
        let sql = tokens.join(" ");
        if let Ok(stmts) = parse(&sql) {
            let catalog = Catalog::new();
            let views = ViewRegistry::new();
            let macros = MacroRegistry::new();
            let binder = Binder::new(&catalog, &views, &macros);
            for stmt in stmts {
                if let Statement::Select(sel) = stmt {
                    let _ = binder.bind_select(&sel);
                }
            }
        }
    }
}

/// Deterministic error-path checks: every malformed statement yields a
/// specific parse/bind error, never success and never a panic.
#[test]
fn malformed_statements_error_cleanly() {
    let cases = [
        "select",
        "select from t",
        "select * from",
        "select * from t where",
        "select * from t group by",
        "select * from t join u",      // missing ON
        "select * from t limit",       // missing count
        "select * from t limit 999999999999999999999999",
        "create table t ()",
        "create table t (a unknown_type)",
        "create view v",
        "insert into t values",
        "select count(distinct *) from t",
        "select * from t order by",
        "select case end from t",
        "select allow_precision_loss from t",
        "select 'unterminated from t",
        "select * from t union select 1", // UNION without ALL
    ];
    for sql in cases {
        match parse(sql) {
            Err(_) => {}
            Ok(stmts) => {
                // If it parses, it must at least fail to bind.
                let catalog = Catalog::new();
                let views = ViewRegistry::new();
                let macros = MacroRegistry::new();
                let binder = Binder::new(&catalog, &views, &macros);
                for stmt in stmts {
                    if let Statement::Select(sel) = stmt {
                        assert!(
                            binder.bind_select(&sel).is_err(),
                            "should not fully succeed: {sql}"
                        );
                    }
                }
            }
        }
    }
}

/// Deeply nested expressions must not blow the stack: moderate nesting
/// parses, hostile nesting errors cleanly (bounded recursion).
#[test]
fn deep_nesting_is_handled() {
    let nested = |n: usize| {
        let mut sql = String::from("select ");
        for _ in 0..n {
            sql.push('(');
        }
        sql.push('1');
        for _ in 0..n {
            sql.push(')');
        }
        sql.push_str(" as x");
        sql
    };
    assert_eq!(parse(&nested(40)).expect("moderate nesting parses").len(), 1);
    let err = parse(&nested(5_000)).expect_err("hostile nesting must error");
    assert!(err.to_string().contains("nesting"), "{err}");
}
