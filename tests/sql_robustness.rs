//! SQL front-end robustness: the parser and binder must never panic —
//! whatever bytes arrive, the answer is `Ok` or a clean `VdmError`.
//! Randomized inputs come from the in-repo deterministic PRNG, so the
//! suite runs offline and the same cases replay on every run.

use vdm_catalog::Catalog;
use vdm_plan::ViewRegistry;
use vdm_sql::{parse, Binder, MacroRegistry, Statement};
use vdm_types::SplitMix64;

/// Arbitrary UTF-8 never panics the lexer/parser.
#[test]
fn parser_never_panics_on_arbitrary_input() {
    let mut rng = SplitMix64::seed_from_u64(0x501);
    for _ in 0..256 {
        let len: usize = rng.random_range(0..200);
        let s: String = (0..len)
            .map(|_| {
                // Mix plain ASCII (printable + controls) with arbitrary
                // scalar values so multi-byte sequences are exercised.
                if rng.random_range(0..4usize) == 0 {
                    loop {
                        let c: u32 = rng.random_range(0..0x11_0000u32);
                        if let Some(ch) = char::from_u32(c) {
                            break ch;
                        }
                    }
                } else {
                    char::from_u32(rng.random_range(0..128u32)).unwrap()
                }
            })
            .collect();
        let _ = parse(&s);
    }
}

const SOUP: &[&str] = &[
    "select", "from", "where", "group", "by", "left", "outer", "join", "on", "union", "all",
    "limit", "offset", "order", "case", "when", "then", "end", "many", "to", "one", "(", ")", ",",
    "*", "=", "t", "x", "1", "1.5", "'s'", "as", "and", "or", "not", "null", "count",
];

/// SQL-shaped token soup never panics either (denser keyword mix than
/// plain random strings reach).
#[test]
fn parser_never_panics_on_token_soup() {
    let mut rng = SplitMix64::seed_from_u64(0x502);
    for _ in 0..256 {
        let n: usize = rng.random_range(0..40);
        let sql: Vec<&str> = (0..n).map(|_| SOUP[rng.random_range(0..SOUP.len())]).collect();
        let _ = parse(&sql.join(" "));
    }
}

const BIND_SOUP: &[&str] = &[
    "select", "from", "where", "t", "a", "b", "join", "on", "=", "1", "(", ")", ",", "*", "count",
    "sum", "group", "by", "limit", "5",
];

/// Whatever parses also binds without panicking (against an empty
/// catalog, so most statements fail name resolution — cleanly).
#[test]
fn binder_never_panics() {
    let mut rng = SplitMix64::seed_from_u64(0x503);
    for _ in 0..256 {
        let n: usize = rng.random_range(0..30);
        let tokens: Vec<&str> =
            (0..n).map(|_| BIND_SOUP[rng.random_range(0..BIND_SOUP.len())]).collect();
        let sql = tokens.join(" ");
        if let Ok(stmts) = parse(&sql) {
            let catalog = Catalog::new();
            let views = ViewRegistry::new();
            let macros = MacroRegistry::new();
            let binder = Binder::new(&catalog, &views, &macros);
            for stmt in stmts {
                if let Statement::Select(sel) = stmt {
                    let _ = binder.bind_select(&sel);
                }
            }
        }
    }
}

/// Deterministic error-path checks: every malformed statement yields a
/// specific parse/bind error, never success and never a panic.
#[test]
fn malformed_statements_error_cleanly() {
    let cases = [
        "select",
        "select from t",
        "select * from",
        "select * from t where",
        "select * from t group by",
        "select * from t join u", // missing ON
        "select * from t limit",  // missing count
        "select * from t limit 999999999999999999999999",
        "create table t ()",
        "create table t (a unknown_type)",
        "create view v",
        "insert into t values",
        "select count(distinct *) from t",
        "select * from t order by",
        "select case end from t",
        "select allow_precision_loss from t",
        "select 'unterminated from t",
        "select * from t union select 1", // UNION without ALL
    ];
    for sql in cases {
        match parse(sql) {
            Err(_) => {}
            Ok(stmts) => {
                // If it parses, it must at least fail to bind.
                let catalog = Catalog::new();
                let views = ViewRegistry::new();
                let macros = MacroRegistry::new();
                let binder = Binder::new(&catalog, &views, &macros);
                for stmt in stmts {
                    if let Statement::Select(sel) = stmt {
                        assert!(
                            binder.bind_select(&sel).is_err(),
                            "should not fully succeed: {sql}"
                        );
                    }
                }
            }
        }
    }
}

/// Deeply nested expressions must not blow the stack: moderate nesting
/// parses, hostile nesting errors cleanly (bounded recursion).
#[test]
fn deep_nesting_is_handled() {
    let nested = |n: usize| {
        let mut sql = String::from("select ");
        for _ in 0..n {
            sql.push('(');
        }
        sql.push('1');
        for _ in 0..n {
            sql.push(')');
        }
        sql.push_str(" as x");
        sql
    };
    assert_eq!(parse(&nested(40)).expect("moderate nesting parses").len(), 1);
    let err = parse(&nested(5_000)).expect_err("hostile nesting must error");
    assert!(err.to_string().contains("nesting"), "{err}");
}
