//! Property tests for the exact-decimal substrate (§7.1 depends on its
//! semantics being airtight). Runs on the in-repo deterministic PRNG so
//! the workspace needs no external property-testing dependency: each
//! property is checked over a few thousand seeded random cases, and every
//! assertion message carries the operands for reproduction.

use vdm_types::{Decimal, SplitMix64};

const CASES: usize = 2_000;

/// Units within money-like magnitudes, scales within business range.
fn random_dec(rng: &mut SplitMix64) -> Decimal {
    let units: i128 = rng.random_range(-1_000_000_000_000i128..1_000_000_000_000);
    let scale: i64 = rng.random_range(0..8);
    Decimal::from_units(units, scale as u8)
}

#[test]
fn addition_is_commutative_and_associative() {
    let mut rng = SplitMix64::seed_from_u64(0xDEC1);
    for _ in 0..CASES {
        let (a, b, c) = (random_dec(&mut rng), random_dec(&mut rng), random_dec(&mut rng));
        let ab = a.checked_add(&b).unwrap();
        let ba = b.checked_add(&a).unwrap();
        assert_eq!(ab, ba, "{a} + {b}");
        let ab_c = ab.checked_add(&c).unwrap();
        let a_bc = a.checked_add(&b.checked_add(&c).unwrap()).unwrap();
        assert_eq!(ab_c, a_bc, "({a} + {b}) + {c}");
    }
}

#[test]
fn add_then_subtract_round_trips() {
    let mut rng = SplitMix64::seed_from_u64(0xDEC2);
    for _ in 0..CASES {
        let (a, b) = (random_dec(&mut rng), random_dec(&mut rng));
        let sum = a.checked_add(&b).unwrap();
        let back = sum.checked_sub(&b).unwrap();
        assert_eq!(back, a, "({a} + {b}) - {b}");
    }
}

#[test]
fn display_parse_round_trips() {
    let mut rng = SplitMix64::seed_from_u64(0xDEC3);
    for _ in 0..CASES {
        let a = random_dec(&mut rng);
        let text = a.to_string();
        let parsed: Decimal = text.parse().unwrap();
        assert_eq!(parsed, a, "{text}");
        assert_eq!(parsed.scale(), a.scale(), "{text}");
    }
}

#[test]
fn rounding_is_idempotent_and_monotone() {
    let mut rng = SplitMix64::seed_from_u64(0xDEC4);
    for _ in 0..CASES {
        let (a, b) = (random_dec(&mut rng), random_dec(&mut rng));
        let s: i64 = rng.random_range(0..6);
        let s = s as u8;
        let ra = a.round_to(s);
        assert_eq!(ra.round_to(s), ra, "idempotent at {a} scale {s}");
        if a <= b {
            assert!(a.round_to(s) <= b.round_to(s), "monotone: {a} vs {b} at scale {s}");
        }
    }
}

#[test]
fn rounding_error_is_bounded() {
    let mut rng = SplitMix64::seed_from_u64(0xDEC5);
    for _ in 0..CASES {
        let a = random_dec(&mut rng);
        let s: i64 = rng.random_range(0..6);
        let s = s as u8;
        let r = a.round_to(s);
        let diff = r.checked_sub(&a).unwrap();
        let half_ulp = Decimal::from_units(5, s + 1); // 0.5 * 10^-s
        let abs = if diff < Decimal::zero(0) { diff.negate() } else { diff };
        assert!(abs <= half_ulp, "|{r} - {a}| = {abs} > {half_ulp}");
    }
}

#[test]
fn comparison_agrees_with_subtraction() {
    let mut rng = SplitMix64::seed_from_u64(0xDEC6);
    for _ in 0..CASES {
        let (a, b) = (random_dec(&mut rng), random_dec(&mut rng));
        let diff = a.checked_sub(&b).unwrap();
        let zero = Decimal::zero(diff.scale());
        match a.cmp(&b) {
            std::cmp::Ordering::Less => assert!(diff < zero, "{a} < {b}"),
            std::cmp::Ordering::Equal => assert!(diff == zero, "{a} == {b}"),
            std::cmp::Ordering::Greater => assert!(diff > zero, "{a} > {b}"),
        }
    }
}

#[test]
fn rescale_widening_is_exact() {
    let mut rng = SplitMix64::seed_from_u64(0xDEC7);
    for _ in 0..CASES {
        let a = random_dec(&mut rng);
        let extra: i64 = rng.random_range(0..6);
        let wider = a.rescale((a.scale() + extra as u8).min(18)).unwrap();
        assert_eq!(wider, a, "widening {a} by {extra} must not change the value");
    }
}

#[test]
fn multiplication_by_one_is_identity() {
    let mut rng = SplitMix64::seed_from_u64(0xDEC8);
    let one = Decimal::from_int(1);
    for _ in 0..CASES {
        let a = random_dec(&mut rng);
        assert_eq!(a.checked_mul(&one).unwrap(), a, "{a} * 1");
    }
}

/// The §7.1 bound: interchanging per-row rounding with summation can
/// move the total by at most half an ULP per row.
#[test]
fn sum_of_rounds_close_to_round_of_sum() {
    let mut rng = SplitMix64::seed_from_u64(0xDEC9);
    for _ in 0..500 {
        let n: usize = rng.random_range(1..40);
        let values: Vec<Decimal> = (0..n).map(|_| random_dec(&mut rng)).collect();
        let s: i64 = rng.random_range(0..4);
        let s = s as u8;
        let mut sum_rounded = Decimal::zero(s);
        let mut sum_exact = Decimal::zero(0);
        for v in &values {
            sum_rounded = sum_rounded.checked_add(&v.round_to(s)).unwrap();
            sum_exact = sum_exact.checked_add(v).unwrap();
        }
        let interchange = sum_exact.round_to(s);
        let diff = sum_rounded.checked_sub(&interchange).unwrap();
        let abs = if diff < Decimal::zero(0) { diff.negate() } else { diff };
        // n rows each contribute at most 0.5 ULP; plus 0.5 for the final round.
        let bound = Decimal::from_units(5 * (values.len() as i128 + 1), s + 1);
        assert!(abs <= bound, "|{sum_rounded} - {interchange}| = {abs} > {bound}");
    }
}
