//! Property tests for the exact-decimal substrate (§7.1 depends on its
//! semantics being airtight).

use proptest::prelude::*;
use vdm_types::Decimal;

fn dec_strategy() -> impl Strategy<Value = Decimal> {
    // Units within money-like magnitudes, scales within business range.
    (-1_000_000_000_000i128..1_000_000_000_000, 0u8..8)
        .prop_map(|(units, scale)| Decimal::from_units(units, scale))
}

proptest! {
    #[test]
    fn addition_is_commutative_and_associative(a in dec_strategy(), b in dec_strategy(), c in dec_strategy()) {
        let ab = a.checked_add(&b).unwrap();
        let ba = b.checked_add(&a).unwrap();
        prop_assert_eq!(ab, ba);
        let ab_c = ab.checked_add(&c).unwrap();
        let a_bc = a.checked_add(&b.checked_add(&c).unwrap()).unwrap();
        prop_assert_eq!(ab_c, a_bc);
    }

    #[test]
    fn add_then_subtract_round_trips(a in dec_strategy(), b in dec_strategy()) {
        let sum = a.checked_add(&b).unwrap();
        let back = sum.checked_sub(&b).unwrap();
        prop_assert_eq!(back, a);
    }

    #[test]
    fn display_parse_round_trips(a in dec_strategy()) {
        let text = a.to_string();
        let parsed: Decimal = text.parse().unwrap();
        prop_assert_eq!(parsed, a);
        prop_assert_eq!(parsed.scale(), a.scale());
    }

    #[test]
    fn rounding_is_idempotent_and_monotone(a in dec_strategy(), b in dec_strategy(), s in 0u8..6) {
        let ra = a.round_to(s);
        prop_assert_eq!(ra.round_to(s), ra, "idempotent");
        if a <= b {
            prop_assert!(a.round_to(s) <= b.round_to(s), "monotone: {a} vs {b} at scale {s}");
        }
    }

    #[test]
    fn rounding_error_is_bounded(a in dec_strategy(), s in 0u8..6) {
        let r = a.round_to(s);
        let diff = r.checked_sub(&a).unwrap();
        let half_ulp = Decimal::from_units(5, s + 1); // 0.5 * 10^-s
        let abs = if diff < Decimal::zero(0) { diff.negate() } else { diff };
        prop_assert!(abs <= half_ulp, "|{r} - {a}| = {abs} > {half_ulp}");
    }

    #[test]
    fn comparison_agrees_with_subtraction(a in dec_strategy(), b in dec_strategy()) {
        let diff = a.checked_sub(&b).unwrap();
        let zero = Decimal::zero(diff.scale());
        match a.cmp(&b) {
            std::cmp::Ordering::Less => prop_assert!(diff < zero),
            std::cmp::Ordering::Equal => prop_assert!(diff == zero),
            std::cmp::Ordering::Greater => prop_assert!(diff > zero),
        }
    }

    #[test]
    fn rescale_widening_is_exact(a in dec_strategy(), extra in 0u8..6) {
        let wider = a.rescale((a.scale() + extra).min(18)).unwrap();
        prop_assert_eq!(wider, a, "widening must not change the value");
    }

    #[test]
    fn multiplication_by_one_is_identity(a in dec_strategy()) {
        let one = Decimal::from_int(1);
        prop_assert_eq!(a.checked_mul(&one).unwrap(), a);
    }

    /// The §7.1 bound: interchanging per-row rounding with summation can
    /// move the total by at most half an ULP per row.
    #[test]
    fn sum_of_rounds_close_to_round_of_sum(values in prop::collection::vec(dec_strategy(), 1..40), s in 0u8..4) {
        let mut sum_rounded = Decimal::zero(s);
        let mut sum_exact = Decimal::zero(0);
        for v in &values {
            sum_rounded = sum_rounded.checked_add(&v.round_to(s)).unwrap();
            sum_exact = sum_exact.checked_add(v).unwrap();
        }
        let interchange = sum_exact.round_to(s);
        let diff = sum_rounded.checked_sub(&interchange).unwrap();
        let abs = if diff < Decimal::zero(0) { diff.negate() } else { diff };
        // n rows each contribute at most 0.5 ULP; plus 0.5 for the final round.
        let bound = Decimal::from_units(5 * (values.len() as i128 + 1), s + 1);
        prop_assert!(abs <= bound, "|{sum_rounded} - {interchange}| = {abs} > {bound}");
    }
}
