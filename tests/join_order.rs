//! Serial-vs-reordered equivalence for cost-based join ordering.
//!
//! Every connected left-deep join order of the same star and chain
//! workload is built by hand, executed serially without optimization to
//! establish a baseline, and then optimized under each of the five paper
//! capability profiles (with live storage statistics, so the DP
//! join-ordering pass actually fires where the profile allows it) and
//! executed serially again. Results must be bit-identical — asserted via
//! `multiset_digest` — across every ordering × profile combination, plus
//! a feedback-corrected re-optimization seeded from a profiled run.

use std::sync::Arc;
use vdm_cache::multiset_digest;
use vdm_core::{feedback, Database, EngineStats};
use vdm_expr::{BinOp, Expr};
use vdm_optimizer::{Optimizer, Profile};
use vdm_plan::{LogicalPlan, PlanRef};
use vdm_types::{SplitMix64, Value};

/// A base relation in the workload: name, column count, and an optional
/// pushed filter applied directly above its scan (same in every order).
struct Rel {
    name: &'static str,
    width: usize,
    filter: Option<Expr>,
}

/// An equi-join edge between two relations, by name and column index.
struct Edge {
    a: &'static str,
    a_col: usize,
    b: &'static str,
    b_col: usize,
}

/// One workload: the database plus its relations, join edges, and the
/// canonical output column list (relation name, column index).
type Workload = (Database, Vec<Rel>, Vec<Edge>, Vec<(&'static str, usize)>);

fn le(col: usize, v: i64) -> Expr {
    Expr::col(col).binary(BinOp::LtEq, Expr::int(v))
}

/// Star: fact(f_id, amount, fk1, fk2, fk3) → d1/d2/d3(id, val), with a
/// selective filter on d1. Dimension keys are dense so every fact row
/// joins; d1's filter keeps ~30% of it.
fn star_db() -> Workload {
    let mut db = Database::hana();
    let mut rng = SplitMix64::seed_from_u64(7);
    for d in ["d1", "d2", "d3"] {
        db.execute(&format!("create table {d} (id bigint primary key, val bigint not null)"))
            .unwrap();
        let rows: Vec<Vec<Value>> =
            (0..20).map(|i| vec![Value::Int(i), Value::Int(rng.random_range(0..100))]).collect();
        db.engine().insert(d, rows).unwrap();
    }
    db.execute(
        "create table fact (f_id bigint primary key, amount bigint not null, \
         fk1 bigint not null, fk2 bigint not null, fk3 bigint not null, \
         foreign key (fk1) references d1 (id), \
         foreign key (fk2) references d2 (id), \
         foreign key (fk3) references d3 (id))",
    )
    .unwrap();
    let rows: Vec<Vec<Value>> = (0..200)
        .map(|i| {
            vec![
                Value::Int(i),
                Value::Int(rng.random_range(0..1_000)),
                Value::Int(rng.random_range(0..20)),
                Value::Int(rng.random_range(0..20)),
                Value::Int(rng.random_range(0..20)),
            ]
        })
        .collect();
    db.engine().insert("fact", rows).unwrap();
    for t in ["fact", "d1", "d2", "d3"] {
        db.engine().merge_delta(t).unwrap();
    }
    let rels = vec![
        Rel { name: "fact", width: 5, filter: None },
        Rel { name: "d1", width: 2, filter: Some(le(1, 30)) },
        Rel { name: "d2", width: 2, filter: None },
        Rel { name: "d3", width: 2, filter: None },
    ];
    let edges = vec![
        Edge { a: "fact", a_col: 2, b: "d1", b_col: 0 },
        Edge { a: "fact", a_col: 3, b: "d2", b_col: 0 },
        Edge { a: "fact", a_col: 4, b: "d3", b_col: 0 },
    ];
    // Canonical output columns, independent of join order.
    let out = vec![("fact", 0), ("fact", 1), ("d1", 1), ("d2", 1), ("d3", 1)];
    (db, rels, edges, out)
}

/// Chain: fact(f_id, nxt, amount) → c1(id, nxt, val) → c2(id, nxt, val)
/// → c3(id, val), with a selective filter on c1.
fn chain_db() -> Workload {
    let mut db = Database::hana();
    let mut rng = SplitMix64::seed_from_u64(11);
    db.execute("create table c3 (id bigint primary key, val bigint not null)").unwrap();
    let rows: Vec<Vec<Value>> =
        (0..20).map(|i| vec![Value::Int(i), Value::Int(rng.random_range(0..100))]).collect();
    db.engine().insert("c3", rows).unwrap();
    for (t, next) in [("c2", "c3"), ("c1", "c2")] {
        db.execute(&format!(
            "create table {t} (id bigint primary key, nxt bigint not null, \
             val bigint not null, foreign key (nxt) references {next} (id))"
        ))
        .unwrap();
        let rows: Vec<Vec<Value>> = (0..20)
            .map(|i| {
                vec![
                    Value::Int(i),
                    Value::Int(rng.random_range(0..20)),
                    Value::Int(rng.random_range(0..100)),
                ]
            })
            .collect();
        db.engine().insert(t, rows).unwrap();
    }
    db.execute(
        "create table fact (f_id bigint primary key, nxt bigint not null, \
         amount bigint not null, foreign key (nxt) references c1 (id))",
    )
    .unwrap();
    let rows: Vec<Vec<Value>> = (0..200)
        .map(|i| {
            vec![
                Value::Int(i),
                Value::Int(rng.random_range(0..20)),
                Value::Int(rng.random_range(0..1_000)),
            ]
        })
        .collect();
    db.engine().insert("fact", rows).unwrap();
    for t in ["fact", "c1", "c2", "c3"] {
        db.engine().merge_delta(t).unwrap();
    }
    let rels = vec![
        Rel { name: "fact", width: 3, filter: None },
        Rel { name: "c1", width: 3, filter: Some(le(2, 30)) },
        Rel { name: "c2", width: 3, filter: None },
        Rel { name: "c3", width: 2, filter: None },
    ];
    let edges = vec![
        Edge { a: "fact", a_col: 1, b: "c1", b_col: 0 },
        Edge { a: "c1", a_col: 1, b: "c2", b_col: 0 },
        Edge { a: "c2", a_col: 1, b: "c3", b_col: 0 },
    ];
    let out = vec![("fact", 0), ("fact", 2), ("c1", 2), ("c2", 2), ("c3", 1)];
    (db, rels, edges, out)
}

/// All permutations of `0..n` where every prefix is connected under the
/// join edges — the orders a left-deep tree can realize without a cross
/// product.
fn connected_orders(rels: &[Rel], edges: &[Edge]) -> Vec<Vec<usize>> {
    let n = rels.len();
    let adjacent = |a: usize, b: usize| {
        edges.iter().any(|e| {
            (e.a == rels[a].name && e.b == rels[b].name)
                || (e.a == rels[b].name && e.b == rels[a].name)
        })
    };
    let mut orders = Vec::new();
    let mut current = Vec::new();
    fn extend(
        n: usize,
        adjacent: &dyn Fn(usize, usize) -> bool,
        current: &mut Vec<usize>,
        orders: &mut Vec<Vec<usize>>,
    ) {
        if current.len() == n {
            orders.push(current.clone());
            return;
        }
        for next in 0..n {
            if current.contains(&next) {
                continue;
            }
            if !current.is_empty() && !current.iter().any(|&p| adjacent(p, next)) {
                continue;
            }
            current.push(next);
            extend(n, adjacent, current, orders);
            current.pop();
        }
    }
    extend(n, &adjacent, &mut current, &mut orders);
    orders
}

/// Builds the left-deep plan for one relation order: scans (with their
/// pushed filters), inner joins keyed by every edge connecting the new
/// relation to the prefix, and a canonical projection on top so the
/// output schema is identical for every order.
fn left_deep(
    db: &Database,
    rels: &[Rel],
    edges: &[Edge],
    out: &[(&str, usize)],
    order: &[usize],
) -> PlanRef {
    let scan = |idx: usize| -> PlanRef {
        let rel = &rels[idx];
        let table = db.catalog().table(rel.name).expect("table");
        let scanned = LogicalPlan::scan(Arc::clone(&table));
        match &rel.filter {
            Some(pred) => LogicalPlan::filter(scanned, pred.clone()).unwrap(),
            None => scanned,
        }
    };
    // Absolute column offset of each placed relation in the growing row.
    let mut offsets: Vec<Option<usize>> = vec![None; rels.len()];
    offsets[order[0]] = Some(0);
    let mut width = rels[order[0]].width;
    let mut plan = scan(order[0]);
    for &idx in &order[1..] {
        let on: Vec<(usize, usize)> = edges
            .iter()
            .filter_map(|e| {
                if e.a == rels[idx].name {
                    let other = rels.iter().position(|r| r.name == e.b).unwrap();
                    offsets[other].map(|off| (off + e.b_col, e.a_col))
                } else if e.b == rels[idx].name {
                    let other = rels.iter().position(|r| r.name == e.a).unwrap();
                    offsets[other].map(|off| (off + e.a_col, e.b_col))
                } else {
                    None
                }
            })
            .collect();
        assert!(!on.is_empty(), "order must stay connected");
        plan = LogicalPlan::inner_join(plan, scan(idx), on).unwrap();
        offsets[idx] = Some(width);
        width += rels[idx].width;
    }
    let projection = out
        .iter()
        .map(|(name, col)| {
            let idx = rels.iter().position(|r| r.name == *name).unwrap();
            let abs = offsets[idx].expect("all relations placed") + col;
            (Expr::col(abs), format!("{name}_{col}"))
        })
        .collect();
    LogicalPlan::project(plan, projection).unwrap()
}

/// The acceptance criterion: every ordering, optimized under every paper
/// profile, executed serially, is bit-identical to the serial baseline.
fn assert_reorder_equivalence(
    label: &str,
    db: &Database,
    rels: &[Rel],
    edges: &[Edge],
    out: &[(&str, usize)],
) {
    let orders = connected_orders(rels, edges);
    assert!(orders.len() >= 8, "{label}: expected a real sweep, got {} orders", orders.len());
    let stats = EngineStats::new(db.engine());

    let baseline_plan = left_deep(db, rels, edges, out, &orders[0]);
    let (baseline, _) = db.execute_plan_unoptimized(&baseline_plan).unwrap();
    let want = multiset_digest(&baseline);
    assert!(baseline.num_rows() > 0, "{label}: workload must produce rows");

    for order in &orders {
        let plan = left_deep(db, rels, edges, out, order);
        // Unoptimized serial execution of the raw ordering.
        let (raw, _) = db.execute_plan_unoptimized(&plan).unwrap();
        assert_eq!(multiset_digest(&raw), want, "{label}: raw order {order:?} diverged");
        // Optimized under each paper profile, with statistics so the
        // cost-based join-ordering pass runs where the profile allows.
        for profile in Profile::paper_systems() {
            let name = profile.name().to_string();
            let optimizer = Optimizer::new(profile);
            let (optimized, _) = optimizer.optimize_traced_with(&plan, Some(&stats), None).unwrap();
            let (got, _) = db.execute_plan_unoptimized(&optimized).unwrap();
            assert_eq!(
                multiset_digest(&got),
                want,
                "{label}: order {order:?} under {name} diverged"
            );
        }
    }
}

#[test]
fn star_all_leftdeep_orders_all_profiles_bit_identical() {
    let (db, rels, edges, out) = star_db();
    assert_reorder_equivalence("star", &db, &rels, &edges, &out);
}

#[test]
fn chain_all_leftdeep_orders_all_profiles_bit_identical() {
    let (db, rels, edges, out) = chain_db();
    assert_reorder_equivalence("chain", &db, &rels, &edges, &out);
}

#[test]
fn feedback_corrected_reoptimization_is_bit_identical() {
    // The re-optimization path the plan cache takes on a misestimate:
    // observed per-node cardinalities become overriding estimates and the
    // plan is re-ordered around them. The result must not change.
    let (db, rels, edges, out) = star_db();
    let stats = EngineStats::new(db.engine());
    let plan = left_deep(&db, &rels, &edges, &out, &[0, 1, 2, 3]);
    let (baseline, _) = db.execute_plan_unoptimized(&plan).unwrap();
    let want = multiset_digest(&baseline);

    let (estimate_only, _) =
        db.optimizer().optimize_traced_with(&plan, Some(&stats), None).unwrap();
    let parallel = vdm_core::ParallelConfig { threads: 1, morsel_rows: 1024 };
    let (profiled, _, profile) = vdm_exec::execute_profiled_at(
        &estimate_only,
        db.engine(),
        db.engine().snapshot(),
        parallel,
    )
    .unwrap();
    assert_eq!(multiset_digest(&profiled), want, "estimate-only plan diverged");

    let observed: Vec<(u32, f64)> =
        profile.nodes.iter().map(|(id, s)| (*id as u32, s.rows_out as f64)).collect();
    let overrides = feedback::overrides_from_observed(&estimate_only, &observed);
    let (corrected, _) =
        db.optimizer().optimize_traced_with(&plan, Some(&stats), Some(&overrides)).unwrap();
    let (got, _) = db.execute_plan_unoptimized(&corrected).unwrap();
    assert_eq!(multiset_digest(&got), want, "feedback-corrected plan diverged");
}
