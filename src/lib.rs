//! Workspace-spanning examples and integration tests live under this root package.
